//! Event actors (Sections 2 and 4.3).
//!
//! "We instantiate an active entity or actor for each event type. Each
//! actor maintains the current guard for its event and manages its
//! communications." We place one actor per *symbol* (managing the event
//! and its complement together — exactly one of them can occur, and the
//! actor is the serialization point deciding which).
//!
//! The actor:
//! - evaluates guards on [`Msg::Attempt`]s, granting, rejecting or parking;
//! - reduces guards as [`Msg::Announce`]/[`Msg::PromiseGrant`] facts arrive
//!   (Section 4.3's proof rules), re-evaluating parked attempts;
//! - runs the promise protocol (Example 11) and the not-yet agreement for
//!   `¬f` guards, with symbol-id priority for deadlock freedom;
//! - tracks each dependency's residual to *trigger* triggerable events
//!   that have become required (Section 3.3(b));
//! - on rejection of an attempted event, makes the complement occur
//!   (Section 3.3(c)).

use crate::journal::{Journal, JournalKind};
use crate::msg::{InstanceId, Msg};
use agent::EventAttrs;
use event_algebra::{
    requires, residuate, DependencyMachine, Expr, Literal, Polarity, StateId, SymbolId,
};
use monitor::WorkflowMonitor;
use obs::{Fact, NodeObs, ObsLit, SpanId, SpanKind, Verdict};
use sim::{Ctx, NodeId, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use temporal::{
    eventually_mask, needs, occurred_mask, status, Guard, GuardStatus, Need, ST_C, ST_D, ST_FULL,
};

/// Literal → trace encoding (the same packed `sym << 1 | polarity`
/// index; see [`obs::ObsLit`]).
fn olit(l: Literal) -> ObsLit {
    ObsLit(l.index() as u32)
}

/// Stable 32-bit fingerprint of a guard's canonical form — the residual
/// id recorded on guard-evaluation spans. Two evaluations with equal
/// fingerprints saw the same residual guard. Hashes the structure
/// directly (guards are kept canonical, so structural equality is
/// semantic equality) rather than a Debug rendering: this runs on every
/// recorded guard evaluation and must not allocate.
fn guard_fingerprint(g: &Guard) -> u32 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.hash(&mut h);
    let x = h.finish();
    (x as u32) ^ ((x >> 32) as u32)
}

/// Routing tables shared by all nodes of one execution.
#[derive(Debug, Default, Clone)]
pub struct Routing {
    /// Actor node for each symbol.
    pub actor_of: BTreeMap<SymbolId, NodeId>,
    /// Agent node owning each symbol's events (absent for free events).
    pub agent_of: BTreeMap<SymbolId, NodeId>,
    /// Actors subscribed to each symbol's announcements.
    pub subscribers_of: BTreeMap<SymbolId, Vec<NodeId>>,
}

/// Counters describing one actor's activity.
#[derive(Debug, Clone, Default)]
pub struct ActorStats {
    /// Attempts received.
    pub attempts: u64,
    /// Attempts granted (event occurred by acceptance).
    pub granted: u64,
    /// Attempts rejected (guard died) — the complement occurred.
    pub rejected: u64,
    /// Announcements received.
    pub announces_in: u64,
    /// Announcements sent.
    pub announces_out: u64,
    /// Promises granted to other events.
    pub promises_granted: u64,
    /// Promise requests sent.
    pub promises_requested: u64,
    /// Not-yet holds granted.
    pub holds_granted: u64,
    /// Guard reductions performed.
    pub reductions: u64,
    /// Triggers sent to the agent.
    pub triggers: u64,
    /// Promise rounds aborted by timeout (and possibly retried).
    pub promise_aborts: u64,
    /// Announcements dropped because they carried a foreign
    /// [`InstanceId`] — always zero unless instance wiring is broken.
    pub cross_instance_rejected: u64,
    /// Virtual time the first attempt parked, if it ever parked.
    pub first_parked_at: Option<Time>,
    /// Virtual time of the occurrence, if any.
    pub occurred_at: Option<Time>,
}

/// Per-polarity scheduling state.
#[derive(Debug, Clone)]
pub struct LitState {
    /// The current (reduced) guard.
    pub guard: Guard,
    /// The compiled guard before any reduction (for ordered rebuilds).
    pub base_guard: Guard,
    /// Event attributes.
    pub attrs: EventAttrs,
    /// An agent has requested this event and awaits a decision.
    pub attempted: bool,
    /// The attempt was forced by the rejection of the complement
    /// (Section 3.3(c)) rather than requested by an agent.
    pub forced: bool,
    /// The guard reduced to `0`: this literal can never occur.
    pub dead: bool,
    /// The actor promised `◇lit` to some requester: the event is obligated.
    pub promised_out: bool,
    /// Promise requests currently in flight (targets).
    pub requested_promises: BTreeSet<Literal>,
    /// Not-yet queries in flight (target symbols).
    pub notyet_pending: BTreeSet<SymbolId>,
    /// Symbols currently holding still for us (granted not-yet).
    pub notyet_granted: BTreeSet<SymbolId>,
    /// A trigger has been sent to the agent for this literal.
    pub triggered: bool,
}

/// Per-dependency residual tracking state — the machinery behind
/// Section 3.3(b) triggering and the Section 3.4 acceptance test.
///
/// The compiled form steps a precompiled [`DependencyMachine`]: each
/// occurrence fact is one transition-table lookup, and the triggering /
/// acceptance queries read compile-time reachability tables. The symbolic
/// form re-residuates the expression tree on every fact — semantically
/// identical, kept selectable as the reference oracle the conformance
/// harness audits the fast path against.
#[derive(Debug, Clone)]
pub enum DepTracker {
    /// Precompiled automaton plus its current state (the fast path).
    Machine {
        /// The dependency's residual machine, shared across actors.
        machine: Arc<DependencyMachine>,
        /// Current residual state.
        state: StateId,
    },
    /// The residual expression, reduced by tree residuation (the oracle).
    Symbolic {
        /// The normalized dependency (rebuild base for ordered replays).
        base: Expr,
        /// The current residual.
        residual: Expr,
    },
}

impl DepTracker {
    /// Track via a precompiled machine, starting at its initial state.
    pub fn compiled(machine: Arc<DependencyMachine>) -> DepTracker {
        let state = machine.initial;
        DepTracker::Machine { machine, state }
    }

    /// Track symbolically from the (normalized) dependency expression.
    pub fn symbolic(dependency: Expr) -> DepTracker {
        DepTracker::Symbolic { residual: dependency.clone(), base: dependency }
    }

    /// Fold one occurrence fact into the residual.
    fn step(&mut self, lit: Literal) {
        match self {
            DepTracker::Machine { machine, state } => *state = machine.step(*state, lit),
            DepTracker::Symbolic { residual, .. } => *residual = residuate(residual, lit),
        }
    }

    /// Back to the unreduced dependency (for ordered replays).
    fn reset(&mut self) {
        match self {
            DepTracker::Machine { machine, state } => *state = machine.initial,
            DepTracker::Symbolic { base, residual } => *residual = base.clone(),
        }
    }

    /// `true` if the dependency is undecided and every satisfying
    /// completion contains `lit` — the Section 3.3(b) triggering test.
    fn requires(&self, lit: Literal) -> bool {
        match self {
            DepTracker::Machine { machine, state } => machine.requires_event(*state, lit),
            DepTracker::Symbolic { residual, .. } => {
                !residual.is_top() && !residual.is_zero() && requires(residual, lit)
            }
        }
    }

    /// `true` if accepting `lit` now keeps the dependency satisfiable —
    /// the Section 3.4 acceptance test for scheduler-forced literals.
    fn live_after(&self, lit: Literal) -> bool {
        match self {
            DepTracker::Machine { machine, state } => machine.may_accept(*state, lit),
            DepTracker::Symbolic { residual, .. } => {
                event_algebra::satisfiable(&residuate(residual, lit))
            }
        }
    }

    /// The current residual as an expression (diagnostics and audits; the
    /// machine form materializes its state's stored expression).
    pub fn residual(&self) -> Expr {
        match self {
            DepTracker::Machine { machine, state } => machine.state(*state).clone(),
            DepTracker::Symbolic { residual, .. } => residual.clone(),
        }
    }

    /// `(state id, liveness)` of the current residual, for trace records.
    /// Symbolic trackers have no compiled state id and report 0.
    pub fn obs_state(&self) -> (u32, bool) {
        match self {
            DepTracker::Machine { machine, state } => (state.0, !machine.state(*state).is_zero()),
            DepTracker::Symbolic { residual, .. } => (0, !residual.is_zero()),
        }
    }
}

impl LitState {
    fn new(guard: Guard, attrs: EventAttrs) -> LitState {
        LitState {
            base_guard: guard.clone(),
            guard,
            attrs,
            attempted: false,
            forced: false,
            dead: false,
            promised_out: false,
            requested_promises: BTreeSet::new(),
            notyet_pending: BTreeSet::new(),
            notyet_granted: BTreeSet::new(),
            triggered: false,
        }
    }
}

/// The actor managing one symbol's event and complement.
#[derive(Debug, Clone)]
pub struct SymbolActor {
    /// The symbol this actor owns.
    pub sym: SymbolId,
    /// The occurrence, once decided: (literal, time, global sequence).
    pub occurred: Option<(Literal, Time, u64)>,
    /// Scheduling state for the positive and negative literal.
    pub pos: LitState,
    /// See [`SymbolActor::pos`].
    pub neg: LitState,
    /// Residual tracker of every dependency mentioning this symbol
    /// (`(dep index, tracker)`) — drives triggering and forced acceptance.
    pub dep_residuals: Vec<(usize, DepTracker)>,
    /// Occurrence facts seen, by global sequence (for ordered rebuilds).
    facts_seen: BTreeMap<u64, Literal>,
    /// Promises received.
    promises_seen: BTreeSet<Literal>,
    /// Highest fact sequence already folded into the guards.
    applied_up_to: u64,
    /// Requesters currently holding this symbol still.
    pub holds: BTreeSet<Literal>,
    /// Promise requests that could not be decided yet (the event is not
    /// attempted, or its guard is not dischargeable under the assumption
    /// so far); re-examined whenever this actor's state advances.
    pending_requests: BTreeSet<(Literal, Literal)>,
    /// Shared routing.
    pub routing: Arc<Routing>,
    /// Lazy mode: facts are recorded as they arrive, but parked attempts
    /// are only re-evaluated on periodic `Tick`s — the polling ablation
    /// of experiment C3.
    pub lazy: bool,
    /// Optional shared execution journal.
    pub journal: Option<Journal>,
    /// Activity counters.
    pub stats: ActorStats,
    /// When set, every outgoing promise request arms a self-addressed
    /// [`Msg::PromiseExpire`] timer with this delay; an unanswered round
    /// is aborted and retried so mutually-`◇` consensus cannot wedge on a
    /// lost promise. `None` (the default) disables the timers — the
    /// behavior on an idealized network is bit-for-bit unchanged.
    pub promise_timeout: Option<Time>,
    /// Give up re-entering a promise round after this many aborts (the
    /// counterpart actor is presumed gone; the symbol is then reported
    /// unresolved rather than looping forever).
    pub max_promise_retries: u32,
    /// Aborted-round counts per `(requested, requester)` pair.
    promise_retries: BTreeMap<(Literal, Literal), u32>,
    /// Flight-recorder handle (off by default): guard evaluations,
    /// occurrences, residual steps and promise-round phases become causal
    /// trace spans when a recorder is attached.
    pub obs: NodeObs,
    /// Fused monitor handle (off by default): the scheduler steps the
    /// armed monitor directly at each transition the sink-driven monitor
    /// used to reconstruct from trace spans — occurrences, fact
    /// applications, enabled guard verdicts and promise-round phases.
    /// Costs nothing when `None`, and nothing extra when armed: no
    /// trace-event payload is constructed on this path.
    pub mon: Option<Arc<WorkflowMonitor>>,
    /// The workflow instance this actor belongs to: announcements from a
    /// different instance are dropped (and counted). Single-instance runs
    /// leave the default [`InstanceId::ROOT`] everywhere.
    pub instance: InstanceId,
    /// The instance stamped on outgoing announcements — equal to
    /// [`SymbolActor::instance`] in every healthy configuration. The
    /// tenant engine's mutation harness deliberately diverges the two to
    /// prove the isolation audit catches cross-wired instances.
    pub announce_instance: InstanceId,
}

impl SymbolActor {
    /// Create the actor for `sym` with compiled guards and attributes for
    /// both polarities, plus the dependencies mentioning the symbol.
    pub fn new(
        sym: SymbolId,
        pos_guard: Guard,
        neg_guard: Guard,
        pos_attrs: EventAttrs,
        neg_attrs: EventAttrs,
        deps: Vec<(usize, DepTracker)>,
        routing: Arc<Routing>,
    ) -> SymbolActor {
        SymbolActor {
            sym,
            occurred: None,
            pos: LitState::new(pos_guard, pos_attrs),
            neg: LitState::new(neg_guard, neg_attrs),
            dep_residuals: deps,
            facts_seen: BTreeMap::new(),
            promises_seen: BTreeSet::new(),
            applied_up_to: 0,
            holds: BTreeSet::new(),
            pending_requests: BTreeSet::new(),
            routing,
            lazy: false,
            journal: None,
            stats: ActorStats::default(),
            promise_timeout: None,
            max_promise_retries: 8,
            promise_retries: BTreeMap::new(),
            obs: NodeObs::off(),
            mon: None,
            instance: InstanceId::ROOT,
            announce_instance: InstanceId::ROOT,
        }
    }

    /// The ordered occurrence facts this actor has recorded, keyed by
    /// global sequence — exposed so harnesses can check that no two
    /// actors diverge on what occurred (`□e`/`□ē` consistency).
    pub fn facts(&self) -> &BTreeMap<u64, Literal> {
        &self.facts_seen
    }

    fn lit_state(&mut self, lit: Literal) -> &mut LitState {
        debug_assert_eq!(lit.symbol(), self.sym);
        match lit.polarity() {
            Polarity::Pos => &mut self.pos,
            Polarity::Neg => &mut self.neg,
        }
    }

    fn lit_state_ref(&self, lit: Literal) -> &LitState {
        match lit.polarity() {
            Polarity::Pos => &self.pos,
            Polarity::Neg => &self.neg,
        }
    }

    /// Handle one protocol message, pushing outgoing messages through
    /// `ctx`.
    pub fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Attempt { lit } => self.on_attempt(ctx, lit),
            Msg::Inform { lit } => self.on_inform(ctx, lit),
            Msg::Announce { lit, at, seq, instance } => {
                // Facts are instance-scoped: an announcement belonging to
                // another live instance is not a fact of this one.
                if instance != self.instance {
                    self.stats.cross_instance_rejected += 1;
                    return;
                }
                self.on_announce(ctx, lit, at, seq);
            }
            Msg::PromiseRequest { lit, for_lit } => self.on_promise_request(ctx, lit, for_lit),
            Msg::PromiseGrant { lit } => self.on_promise_grant(ctx, lit),
            Msg::PromiseDeny { lit } => self.on_promise_deny(lit),
            Msg::NotYetQuery { lit, for_lit } => self.on_notyet_query(ctx, lit, for_lit),
            Msg::NotYetGrant { lit } => self.on_notyet_grant(ctx, lit),
            Msg::NotYetDeny { lit, occurred } => self.on_notyet_deny(ctx, lit, occurred),
            Msg::Release { .. } => self.on_release(ctx, from),
            Msg::Tick => self.on_tick(ctx),
            Msg::PromiseExpire { lit, for_lit } => self.on_promise_expire(ctx, lit, for_lit),
            other => panic!("actor for {:?} received non-actor message {other:?}", self.sym),
        }
    }

    // ----- agent-facing -----

    fn journal(&self, time: sim::Time, kind: JournalKind) {
        if let Some(j) = &self.journal {
            j.record(time, kind);
        }
    }

    fn on_attempt(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        self.stats.attempts += 1;
        self.journal(ctx.now(), JournalKind::Attempt(lit));
        self.obs.rec(ctx.now(), SpanKind::Attempt { lit: olit(lit) });
        if let Some((occ, _, _)) = self.occurred {
            let reply = if occ == lit { Msg::Granted { lit } } else { Msg::Rejected { lit } };
            self.reply_agent(ctx, reply);
            return;
        }
        self.lit_state(lit).attempted = true;
        self.evaluate(ctx, lit);
        self.service_pending_requests(ctx);
    }

    fn on_inform(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        // Immediate events: the scheduler has no choice but to accept
        // (Section 3.3) — unless the symbol already resolved (duplicate
        // inform after a rejection-induced complement), which is ignored.
        if self.occurred.is_none() {
            self.occur(ctx, lit, false, None);
        }
    }

    // ----- facts -----

    fn on_announce(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, _at: Time, seq: u64) {
        self.stats.announces_in += 1;
        if self.facts_seen.insert(seq, lit).is_some() {
            return; // duplicate
        }
        self.obs.rec(ctx.now(), SpanKind::FactApplied { lit: olit(lit), seq });
        if let Some(m) = &self.mon {
            m.on_fact_applied(ctx.now(), self.obs.node, olit(lit), seq);
        }
        self.apply_facts(seq, ctx.now());
        self.after_fact(ctx, Some(lit));
    }

    fn on_promise_grant(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        if self.promises_seen.insert(lit) {
            self.obs.rec(ctx.now(), SpanKind::PromiseCommit { lit: olit(lit) });
            if let Some(m) = &self.mon {
                m.on_promise_commit(ctx.now(), self.obs.node, olit(lit));
            }
            for st in [&mut self.pos, &mut self.neg] {
                st.guard = st.guard.assume_promised(lit);
            }
            self.stats.reductions += 2;
        }
        for l in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            self.lit_state(l).requested_promises.remove(&lit);
        }
        self.after_fact(ctx, None);
    }

    fn on_promise_deny(&mut self, lit: Literal) {
        for l in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            self.lit_state(l).requested_promises.remove(&lit);
        }
        // The need stays; a later fact arrival re-evaluates and may retry.
    }

    /// The timeout armed alongside a promise request fired. If the round
    /// is still unanswered — no grant, no deny, and our own symbol still
    /// unresolved — abort it and re-enter: the request (or its answer)
    /// was lost, and waiting forever would wedge the mutual-`◇`
    /// consensus. Answered or resolved rounds make this a no-op, so a
    /// stale timer can never disturb a healthy run.
    fn on_promise_expire(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, for_lit: Literal) {
        if self.occurred.is_some() {
            return;
        }
        let st = self.lit_state_ref(for_lit);
        if !st.attempted || !st.requested_promises.contains(&lit) {
            return; // answered (grant/deny arrived) or attempt withdrawn
        }
        self.stats.promise_aborts += 1;
        self.journal(ctx.now(), JournalKind::PromiseAborted { lit, for_lit });
        self.obs.rec(ctx.now(), SpanKind::PromiseAbort { lit: olit(lit) });
        if let Some(m) = &self.mon {
            m.on_promise_abort(ctx.now(), self.obs.node, olit(lit));
        }
        self.lit_state(for_lit).requested_promises.remove(&lit);
        let retries = self.promise_retries.entry((lit, for_lit)).or_insert(0);
        if *retries < self.max_promise_retries {
            *retries += 1;
            // Re-evaluating re-runs pursue_needs, which re-sends the
            // request (idempotent at the granter) and arms a fresh timer.
            self.evaluate(ctx, for_lit);
        }
        // Retry budget exhausted: the need stays outstanding and the
        // symbol is reported unresolved by the executor — a permanently
        // unreachable peer is surfaced, not masked.
    }

    /// Fold newly seen occurrence facts into both guards and the
    /// dependency residuals. Facts are applied in global occurrence
    /// order; when a fact arrives with a sequence *below* one already
    /// applied (possible across links with independent latencies), both
    /// guards and residuals are rebuilt from their compiled bases by
    /// replaying the full ordered log — required for `◇(sequence)` atoms
    /// and sequence dependencies, whose reductions do not commute.
    fn apply_facts(&mut self, new_seq: u64, now: Time) {
        if new_seq < self.applied_up_to {
            // Out-of-order arrival: full ordered replay. Residual steps
            // are not re-recorded — the replay re-derives state already
            // captured by earlier `DepStep` spans.
            self.pos.guard = self.pos.base_guard.clone();
            self.neg.guard = self.neg.base_guard.clone();
            for (_, t) in &mut self.dep_residuals {
                t.reset();
            }
            for (_, &l) in self.facts_seen.iter() {
                self.pos.guard = self.pos.guard.assume_occurred(l);
                self.neg.guard = self.neg.guard.assume_occurred(l);
                self.stats.reductions += 2;
                for (_, t) in &mut self.dep_residuals {
                    t.step(l);
                }
            }
            for &p in &self.promises_seen {
                self.pos.guard = self.pos.guard.assume_promised(p);
                self.neg.guard = self.neg.guard.assume_promised(p);
            }
            // Our own occurrence (if any) is part of the order too; it
            // was already folded into the residuals when it happened and
            // is replayed here through facts_seen (we record it there).
        } else {
            let pending: Vec<Literal> =
                self.facts_seen.range(self.applied_up_to + 1..).map(|(_, &l)| l).collect();
            for l in pending {
                self.pos.guard = self.pos.guard.assume_occurred(l);
                self.neg.guard = self.neg.guard.assume_occurred(l);
                self.stats.reductions += 2;
                for (_, t) in &mut self.dep_residuals {
                    t.step(l);
                }
                if self.obs.enabled() {
                    for (ix, t) in &self.dep_residuals {
                        let (state, live) = t.obs_state();
                        let input = olit(l);
                        let kind = SpanKind::DepStep { dep: *ix as u32, input, state, live };
                        self.obs.rec(now, kind);
                    }
                }
            }
        }
        let max_seen = self.facts_seen.keys().next_back().copied().unwrap_or(0);
        self.applied_up_to = max_seen.max(self.applied_up_to);
    }

    /// Lazy-mode periodic wake-up: run the deferred re-evaluation.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let was_lazy = self.lazy;
        self.lazy = false;
        self.after_fact(ctx, None);
        self.lazy = was_lazy;
    }

    /// After any new information: re-evaluate parked attempts, check
    /// triggering, and invalidate stale not-yet grants. In lazy mode the
    /// re-evaluation is deferred to the next tick; facts were already
    /// folded into the guards by the caller.
    fn after_fact(&mut self, ctx: &mut Ctx<'_, Msg>, announced: Option<Literal>) {
        // A not-yet grant we received becomes moot once that symbol
        // resolves — drop it (the constraint is now decided by the fact).
        if let Some(l) = announced {
            for st in [&mut self.pos, &mut self.neg] {
                st.notyet_granted.remove(&l.symbol());
                st.notyet_pending.remove(&l.symbol());
            }
        }
        if self.lazy {
            return;
        }
        if self.occurred.is_none() {
            for lit in [Literal::pos(self.sym), Literal::neg(self.sym)] {
                if self.lit_state_ref(lit).attempted {
                    self.evaluate(ctx, lit);
                    if self.occurred.is_some() {
                        break;
                    }
                }
            }
        }
        self.check_triggering(ctx);
        self.service_pending_requests(ctx);
    }

    /// Trigger a triggerable own literal that has become *required*: every
    /// remaining satisfying completion of some dependency contains it.
    /// With an agent, the trigger is sent there (the agent performs the
    /// task action); an agent-less free event is self-attempted — the
    /// scheduler causes it directly, its guard still governing the
    /// timing.
    fn check_triggering(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.occurred.is_some() {
            return;
        }
        let agent = self.routing.agent_of.get(&self.sym).copied();
        for lit in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            let st = self.lit_state_ref(lit);
            // Positives are proactively caused only when triggerable;
            // complements may be decided by the scheduler whenever the
            // positive was never attempted.
            let eligible = if lit.is_pos() {
                st.attrs.triggerable
            } else {
                !self.lit_state_ref(lit.complement()).attempted
            };
            if !eligible || st.triggered || st.attempted {
                continue;
            }
            let required = self.dep_residuals.iter().any(|(_, t)| t.requires(lit));
            if required {
                // A required *complement* with the positive unattempted
                // is decided by the scheduler directly (a proactive
                // Section 3.3(c) rejection: every satisfying completion
                // rules the event out). A required positive goes to the
                // agent when one exists; free events self-attempt.
                let force_here = agent.is_none()
                    || (!lit.is_pos() && !self.lit_state_ref(lit.complement()).attempted);
                self.lit_state(lit).triggered = true;
                self.stats.triggers += 1;
                self.journal(ctx.now(), JournalKind::Triggered(lit));
                self.obs.rec(ctx.now(), SpanKind::Triggered { lit: olit(lit) });
                if force_here {
                    let st = self.lit_state(lit);
                    st.attempted = true;
                    st.forced = true;
                    self.evaluate(ctx, lit);
                    if self.occurred.is_some() {
                        break;
                    }
                } else if let Some(agent) = agent {
                    ctx.send(agent, Msg::Trigger { lit });
                }
            }
        }
    }

    // ----- evaluation -----

    /// The set of states `sym` could currently be in, as far as this
    /// actor can prove: promises pin the eventual polarity, active
    /// not-yet grants (for `lit`) pin "unresolved at this instant".
    /// Occurred facts were already folded into the guard masks, so they
    /// do not appear here.
    fn possible_states(&self, lit: Literal, sym: SymbolId) -> u8 {
        let mut m = ST_FULL;
        for p in &self.promises_seen {
            if p.symbol() == sym {
                m &= eventually_mask(p.polarity());
            }
        }
        if self.lit_state_ref(lit).notyet_granted.contains(&sym) {
            m &= ST_C | ST_D;
        }
        m
    }

    /// Coverage evaluation: the guard holds *now* iff it is true for
    /// every assignment of currently-possible states to its constrained
    /// symbols. Sound under asynchrony (unannounced remote occurrences
    /// are inside the possible sets) and complete for literal-level
    /// guards; conjuncts with `◇(sequence)` atoms cannot witness coverage.
    fn guard_enabled(&self, lit: Literal) -> bool {
        let g = &self.lit_state_ref(lit).guard;
        if g.holds_now() {
            return true;
        }
        let syms: Vec<SymbolId> = g
            .conjuncts()
            .iter()
            .flat_map(|c| c.constrained_symbols().map(|(s, _)| s))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if syms.is_empty() || syms.len() > 12 {
            return false;
        }
        let usable: Vec<_> =
            g.conjuncts().iter().filter(|c| c.seq_atoms().next().is_none()).collect();
        if usable.is_empty() {
            return false;
        }
        let possible: Vec<u8> = syms.iter().map(|&s| self.possible_states(lit, s)).collect();
        // Odometer over the possible state sets.
        let mut states: Vec<u8> = possible.iter().map(|&p| p & p.wrapping_neg()).collect();
        loop {
            let covered = usable
                .iter()
                .any(|c| syms.iter().zip(&states).all(|(&s, &st)| c.mask(s) & st != 0));
            if !covered {
                return false;
            }
            // Advance to the next state combination.
            let mut k = 0;
            loop {
                if k == syms.len() {
                    return true;
                }
                // Next set bit of possible[k] above states[k].
                let above = possible[k] & !(states[k] | (states[k] - 1));
                if above != 0 {
                    states[k] = above & above.wrapping_neg();
                    break;
                }
                states[k] = possible[k] & possible[k].wrapping_neg();
                k += 1;
            }
        }
    }

    /// Record a guard-evaluation span: the verdict, the residual guard's
    /// fingerprint, and the ordered occurrence facts folded into the
    /// guard so far — the facts the causal-consistency audit traces back
    /// to their establishing occurrences.
    fn rec_guard_eval(&self, now: Time, lit: Literal, verdict: Verdict) -> Option<SpanId> {
        // The fused monitor only watches Enabled verdicts (the stall
        // watchdog's enabled-but-unfired entries); it is stepped even
        // with the recorder off — and before the occurrence that may
        // immediately close the entry, mirroring span order.
        if matches!(verdict, Verdict::Enabled) {
            if let Some(m) = &self.mon {
                m.on_guard_enabled(now, self.obs.node, olit(lit));
            }
        }
        if !self.obs.enabled() {
            return None;
        }
        let facts: Vec<Fact> =
            self.facts_seen.iter().map(|(&seq, &l)| Fact { seq, lit: olit(l), at: 0 }).collect();
        let residual = guard_fingerprint(&self.lit_state_ref(lit).guard);
        self.obs.rec(now, SpanKind::GuardEval { lit: olit(lit), verdict, residual, facts })
    }

    /// Record a promise denial span and step the fused monitor (which
    /// closes the requester's open promise round).
    fn rec_promise_deny(&self, now: Time, lit: Literal, requester: NodeId) {
        self.obs.rec(now, SpanKind::PromiseDeny { lit: olit(lit), to: requester.0 });
        if let Some(m) = &self.mon {
            m.on_promise_deny(now, requester.0, olit(lit));
        }
    }

    /// Decide an attempted literal: occur, reject, or park and pursue the
    /// outstanding needs (promises / not-yet agreements).
    fn evaluate(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        if self.occurred.is_some() {
            return;
        }
        let held = !self.holds.is_empty();
        let st = self.lit_state_ref(lit);
        // Scheduler-forced literals (required complements, self-triggered
        // free events) are decided by residual acceptance — Section 3.4's
        // criterion over the dependencies this actor tracks — rather than
        // guard coverage: their occurrence was already established as
        // *required*, so the only question is the timing.
        if st.forced && !held {
            let acceptable = self.dep_residuals.iter().all(|(_, t)| t.live_after(lit));
            if acceptable {
                let span = self.rec_guard_eval(ctx.now(), lit, Verdict::Enabled);
                self.occur(ctx, lit, true, span);
                return;
            }
        }
        match status(&st.guard) {
            // A guard whose compiled form carries ◇(sequence) atoms can
            // look *prematurely* dead when announcements arrive out of
            // order (residuating the sequence by a later event kills it;
            // the ordered rebuild recovers the guard once the earlier
            // fact arrives). Rejection is irreversible, so such guards
            // park instead of rejecting — Weakened mode (the default) has
            // no sequence atoms and keeps eager rejection.
            GuardStatus::Dead if !st.base_guard.has_seq_atoms() => {
                self.rec_guard_eval(ctx.now(), lit, Verdict::Dead);
                self.lit_state(lit).dead = true;
                self.reject(ctx, lit);
            }
            GuardStatus::Dead => {
                self.rec_guard_eval(ctx.now(), lit, Verdict::Parked);
                if self.stats.first_parked_at.is_none() {
                    self.stats.first_parked_at = Some(ctx.now());
                }
            }
            _ if self.guard_enabled(lit) => {
                let span = self.rec_guard_eval(ctx.now(), lit, Verdict::Enabled);
                if !held {
                    self.occur(ctx, lit, true, span);
                }
                // Held: wait for Release, then re-evaluate.
            }
            _ => {
                self.rec_guard_eval(ctx.now(), lit, Verdict::Parked);
                if self.stats.first_parked_at.is_none() {
                    self.stats.first_parked_at = Some(ctx.now());
                    self.journal(ctx.now(), JournalKind::Parked(lit));
                    self.obs.rec(ctx.now(), SpanKind::Parked { lit: olit(lit) });
                }
                self.pursue_needs(ctx, lit);
            }
        }
    }

    /// Send the protocol messages needed to unblock `lit`, across all
    /// conjuncts (spurious paths are suppressed at the *grant* side: a
    /// promise to an unattempted triggerable event is given only when the
    /// event is required — see [`SymbolActor::try_grant`]).
    fn pursue_needs(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        let needs_per_conjunct = needs(&self.lit_state_ref(lit).guard);
        let mut to_send: Vec<Msg> = Vec::new();
        {
            let st = self.lit_state_ref(lit);
            for conj in &needs_per_conjunct {
                for need in conj {
                    match need {
                        Need::Promise(f) => {
                            // Skip promises already in flight — and
                            // promises already *held*: a constraint that
                            // survives a held promise (e.g. the {D} mask
                            // ◇l̄∧¬l̄) needs an agreement or an occurrence,
                            // not the same promise again.
                            if !st.requested_promises.contains(f) && !self.promises_seen.contains(f)
                            {
                                to_send.push(Msg::PromiseRequest { lit: *f, for_lit: lit });
                            }
                        }
                        Need::NotYetAgreement(f) => {
                            if !st.notyet_pending.contains(&f.symbol())
                                && !st.notyet_granted.contains(&f.symbol())
                            {
                                to_send.push(Msg::NotYetQuery { lit: *f, for_lit: lit });
                            }
                        }
                        Need::Occurrence(_) | Need::SequenceHead(_) => {
                            // Passive: discharged by announcements.
                        }
                    }
                }
            }
        }
        to_send.sort_by_key(|m| (m.literal(), matches!(m, Msg::NotYetQuery { .. })));
        to_send.dedup();
        for m in to_send {
            match &m {
                Msg::PromiseRequest { lit: f, .. } => {
                    let target = self.routing.actor_of[&f.symbol()];
                    self.journal(
                        ctx.now(),
                        JournalKind::PromiseRequested { lit: *f, for_lit: lit },
                    );
                    self.obs.rec(
                        ctx.now(),
                        SpanKind::PromiseOpen { lit: olit(*f), for_lit: olit(lit) },
                    );
                    if let Some(m) = &self.mon {
                        m.on_promise_open(ctx.now(), self.obs.node, olit(*f));
                    }
                    self.lit_state(lit).requested_promises.insert(*f);
                    self.stats.promises_requested += 1;
                    if let Some(timeout) = self.promise_timeout {
                        ctx.send_after(
                            ctx.self_id,
                            Msg::PromiseExpire { lit: *f, for_lit: lit },
                            timeout,
                        );
                    }
                    ctx.send(target, m);
                }
                Msg::NotYetQuery { lit: f, .. } => {
                    let target = self.routing.actor_of[&f.symbol()];
                    self.lit_state(lit).notyet_pending.insert(f.symbol());
                    ctx.send(target, m);
                }
                _ => unreachable!(),
            }
        }
    }

    // ----- occurrence / rejection -----

    /// The event occurs: record, notify the agent (if it asked), announce
    /// to subscribers, release any holds we had requested. The occurrence
    /// span is parented under the guard evaluation that justified it
    /// (`eval_span`), falling back to the delivery cursor for informs.
    fn occur(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        lit: Literal,
        by_acceptance: bool,
        eval_span: Option<SpanId>,
    ) {
        debug_assert!(self.occurred.is_none());
        let at = ctx.now();
        let seq = ctx.delivery_seq();
        self.occurred = Some((lit, at, seq));
        self.stats.occurred_at = Some(at);
        self.journal(at, JournalKind::Occurred(lit));
        if self.obs.enabled() {
            let kind = SpanKind::Occurred { lit: olit(lit), seq, by_acceptance };
            match eval_span {
                Some(p) => self.obs.rec_under(Some(p), at, kind),
                None => self.obs.rec(at, kind),
            };
        }
        if let Some(m) = &self.mon {
            m.on_occurrence(at, self.obs.node, olit(lit), seq);
        }
        if by_acceptance {
            self.stats.granted += 1;
        }
        // Record our own occurrence in the ordered fact log (rebuilds
        // replay it) and advance the residuals now.
        self.facts_seen.insert(seq, lit);
        self.applied_up_to = self.applied_up_to.max(seq);
        self.obs.rec(at, SpanKind::FactApplied { lit: olit(lit), seq });
        if let Some(m) = &self.mon {
            m.on_fact_applied(at, self.obs.node, olit(lit), seq);
        }
        for (_, t) in &mut self.dep_residuals {
            t.step(lit);
        }
        if self.obs.enabled() {
            for (ix, t) in &self.dep_residuals {
                let (state, live) = t.obs_state();
                let kind = SpanKind::DepStep { dep: *ix as u32, input: olit(lit), state, live };
                self.obs.rec(at, kind);
            }
        }
        let st = self.lit_state_ref(lit);
        if st.attempted && !st.forced {
            self.reply_agent(ctx, Msg::Granted { lit });
        }
        let other = lit.complement();
        let ost = self.lit_state_ref(other);
        if ost.attempted && !ost.forced {
            self.reply_agent(ctx, Msg::Rejected { lit: other });
        }
        // Announce to every subscriber.
        if let Some(subs) = self.routing.subscribers_of.get(&self.sym) {
            let mut notified = 0;
            for &node in subs {
                if node != ctx.self_id {
                    self.stats.announces_out += 1;
                    notified += 1;
                    ctx.send(
                        node,
                        Msg::Announce { lit, at, seq, instance: self.announce_instance },
                    );
                }
            }
            if notified > 0 {
                self.journal(at, JournalKind::Announced { lit, subscribers: notified });
            }
        }
        self.release_all_requested(ctx);
        self.check_triggering(ctx);
    }

    /// The guard on an attempted event died: reject it. By Section 3.3(c),
    /// rejecting an attempted event makes its complement occur — but the
    /// complement's *own* guard still governs the timing, so the
    /// complement is force-attempted through the normal machinery rather
    /// than occurring unconditionally. If both polarities are dead the
    /// workflow is jointly contradictory for this symbol and it stays
    /// unresolved (reported by the executor).
    fn reject(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        self.stats.rejected += 1;
        self.journal(ctx.now(), JournalKind::Rejected(lit));
        self.obs.rec(ctx.now(), SpanKind::Rejected { lit: olit(lit) });
        let was_forced = self.lit_state_ref(lit).forced;
        self.lit_state(lit).attempted = false;
        if !was_forced {
            self.reply_agent(ctx, Msg::Rejected { lit });
        }
        self.release_all_requested(ctx);
        let c = lit.complement();
        if self.occurred.is_none() && !self.lit_state_ref(c).dead {
            let st = self.lit_state(c);
            st.attempted = true;
            st.forced = true;
            self.evaluate(ctx, c);
        }
    }

    /// Release every hold we were granted or asked for (we have decided).
    fn release_all_requested(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut targets: BTreeSet<SymbolId> = BTreeSet::new();
        for st in [&mut self.pos, &mut self.neg] {
            targets.extend(st.notyet_granted.iter().copied());
            targets.extend(st.notyet_pending.iter().copied());
            st.notyet_granted.clear();
            st.notyet_pending.clear();
        }
        for t in targets {
            let node = self.routing.actor_of[&t];
            ctx.send(node, Msg::Release { lit: Literal::pos(t) });
        }
    }

    fn reply_agent(&self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        if let Some(&agent) = self.routing.agent_of.get(&self.sym) {
            ctx.send(agent, msg);
        }
    }

    // ----- promise protocol (Example 11) -----

    fn on_promise_request(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, for_lit: Literal) {
        let requester = self.routing.actor_of[&for_lit.symbol()];
        if let Some((occ, at, seq)) = self.occurred {
            if occ == lit {
                // Already occurred: the announcement is the strongest
                // promise (re-sent in case the requester subscribed late).
                let instance = self.announce_instance;
                ctx.send(requester, Msg::Announce { lit, at, seq, instance });
            } else {
                self.rec_promise_deny(ctx.now(), lit, requester);
                ctx.send(requester, Msg::PromiseDeny { lit });
            }
            return;
        }
        if self.lit_state_ref(lit).dead {
            self.rec_promise_deny(ctx.now(), lit, requester);
            ctx.send(requester, Msg::PromiseDeny { lit });
            return;
        }
        if self.try_grant(ctx, lit, for_lit) {
            return;
        }
        // Undecidable yet (e.g. the event's own attempt is still in
        // flight): hold the request and re-examine as our state advances.
        self.pending_requests.insert((lit, for_lit));
    }

    /// Grant `◇lit` to `for_lit`'s actor if we can guarantee the event:
    /// it is attempted or triggerable, and its guard — assuming the
    /// requester's eventual occurrence — is *eventually discharged*:
    /// every remaining constraint of some conjunct is guaranteed to hold
    /// once the promised events have occurred. (A constraint □f with ◇f
    /// assumed qualifies: when f occurs, □f holds and this event follows —
    /// the paper's conditional promise, discharged by the requester's
    /// occurrence message.)
    fn try_grant(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, for_lit: Literal) -> bool {
        let st = self.lit_state_ref(lit);
        // An attempted event can be guaranteed outright. A triggerable
        // event can always be guaranteed: the scheduler holds the trigger
        // and the residual-driven backstop (check_triggering) fires it if
        // the obligation ever becomes *required* — so the promise is a
        // deferred obligation, and alternative disjuncts (compensation
        // tasks) do not run unless unavoidable (Section 6).
        let can_happen = st.attempted || st.attrs.triggerable;
        // Multi-party consensus (Example 11 generalized): the assumption
        // set includes *every* requester currently waiting on this
        // literal — a fork/join's two branch commits jointly assume each
        // other through the join's promise, and all grants go out
        // together as one mutual commitment.
        let mut party: BTreeSet<Literal> =
            self.pending_requests.iter().filter(|(l, _)| *l == lit).map(|&(_, f)| f).collect();
        party.insert(for_lit);
        let mut assumed = st.guard.clone();
        for &p in &party {
            assumed = assumed.assume_promised(p);
        }
        let mut assumptions: BTreeSet<Literal> = self.promises_seen.clone();
        assumptions.extend(party.iter().copied());
        // A conjunct is eventually dischargeable when every constraint is
        // (a) implied by some assumed occurrence's final state (□f with
        // ◇f assumed), or (b) a not-yet-style mask (admits both
        // unresolved states): such constraints hold while the symbol is
        // unheard-of — occurrences fold into the guard eagerly, so a
        // surviving ¬-mask means unresolved here — and are pinned by the
        // agreement protocol at the promised event's own occurrence.
        let eventually_discharged = assumed.holds_now()
            || assumed.conjuncts().iter().any(|c| {
                c.seq_atoms().next().is_none()
                    && c.constrained_symbols().all(|(s, m)| {
                        assumptions
                            .iter()
                            .any(|l| l.symbol() == s && occurred_mask(l.polarity()) & !m == 0)
                            || (m & (ST_C | ST_D)) == (ST_C | ST_D)
                    })
            });
        if !(can_happen && eventually_discharged) {
            return false;
        }
        self.lit_state(lit).promised_out = true;
        for &p in &party {
            let requester = self.routing.actor_of[&p.symbol()];
            self.stats.promises_granted += 1;
            self.journal(ctx.now(), JournalKind::PromiseGranted(lit));
            self.obs.rec(ctx.now(), SpanKind::PromiseGrant { lit: olit(lit), to: requester.0 });
            ctx.send(requester, Msg::PromiseGrant { lit });
            self.pending_requests.remove(&(lit, p));
        }
        true
    }

    /// Re-examine held promise requests after any state change; grant the
    /// now-grantable, deny those that became impossible, keep the rest.
    fn service_pending_requests(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let pending: Vec<(Literal, Literal)> = self.pending_requests.iter().copied().collect();
        for (lit, for_lit) in pending {
            if let Some((occ, at, seq)) = self.occurred {
                let requester = self.routing.actor_of[&for_lit.symbol()];
                if occ == lit {
                    let instance = self.announce_instance;
                    ctx.send(requester, Msg::Announce { lit, at, seq, instance });
                } else {
                    self.rec_promise_deny(ctx.now(), lit, requester);
                    ctx.send(requester, Msg::PromiseDeny { lit });
                }
                self.pending_requests.remove(&(lit, for_lit));
            } else if self.lit_state_ref(lit).dead {
                let requester = self.routing.actor_of[&for_lit.symbol()];
                self.rec_promise_deny(ctx.now(), lit, requester);
                ctx.send(requester, Msg::PromiseDeny { lit });
                self.pending_requests.remove(&(lit, for_lit));
            } else if self.try_grant(ctx, lit, for_lit) {
                self.pending_requests.remove(&(lit, for_lit));
            }
        }
    }

    // ----- not-yet agreement -----

    fn on_notyet_query(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, for_lit: Literal) {
        let requester = self.routing.actor_of[&for_lit.symbol()];
        if let Some((occ, at, seq)) = self.occurred {
            if occ == lit {
                ctx.send(requester, Msg::NotYetDeny { lit, occurred: true });
            } else {
                // The complement occurred: ¬lit holds forever; the
                // announcement carries that fact.
                let instance = self.announce_instance;
                ctx.send(requester, Msg::Announce { lit: occ, at, seq, instance });
            }
            return;
        }
        // Priority: when the two events have not-yet needs *on each
        // other* (a direct agreement cycle, e.g. a mutual-exclusion
        // specification), the smaller symbol id wins and the larger
        // requester must yield — mutual holds would deadlock. Queries
        // between unrelated events are always granted: holding still for
        // a requester we do not ourselves ¬-depend on cannot close a
        // two-cycle.
        let competing = self.pos.notyet_pending.contains(&for_lit.symbol())
            || self.neg.notyet_pending.contains(&for_lit.symbol());
        if competing && self.sym < for_lit.symbol() {
            ctx.send(requester, Msg::NotYetDeny { lit, occurred: false });
            return;
        }
        self.holds.insert(for_lit);
        self.stats.holds_granted += 1;
        self.journal(ctx.now(), JournalKind::Held { lit, for_lit });
        ctx.send(requester, Msg::NotYetGrant { lit });
    }

    fn on_notyet_grant(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        for l in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            let st = self.lit_state(l);
            if st.notyet_pending.remove(&lit.symbol()) {
                st.notyet_granted.insert(lit.symbol());
            }
        }
        self.after_fact(ctx, None);
    }

    fn on_notyet_deny(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal, occurred: bool) {
        for l in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            self.lit_state(l).notyet_pending.remove(&lit.symbol());
        }
        if occurred {
            // The event occurred, but we have no position in the global
            // occurrence order for it (the real announcement is still in
            // flight and will be applied through the ordered log). Apply
            // only the order-insensitive consequence ◇lit — promise
            // reduction is sound in isolation, unlike occurrence
            // reduction of ◇(sequence) atoms.
            for st in [&mut self.pos, &mut self.neg] {
                st.guard = st.guard.assume_promised(lit);
            }
            self.after_fact(ctx, Some(lit));
        }
        // Otherwise: we yielded; retry on the next fact arrival.
    }

    // ----- crash recovery -----

    /// Called by the executor after a crashed actor's state has been
    /// rebuilt by replaying its write-ahead log. The replay restores all
    /// volatile decision state, but anything this actor *sent* shortly
    /// before the crash may be lost along with the transport's
    /// retransmission buffer — so re-issue the durable obligations:
    ///
    /// - if our symbol resolved, re-announce the occurrence (receivers
    ///   deduplicate by occurrence sequence) and re-send the agent's
    ///   verdict (the agent ignores verdicts it is not waiting for);
    /// - otherwise, forget which promise requests and not-yet queries
    ///   were in flight (their fate is unknowable) and re-pursue from the
    ///   rebuilt guards — requests are idempotent at the granter.
    pub fn resume_after_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some((lit, at, seq)) = self.occurred {
            if let Some(subs) = self.routing.subscribers_of.get(&self.sym) {
                for &node in subs {
                    if node != ctx.self_id {
                        self.stats.announces_out += 1;
                        let instance = self.announce_instance;
                        ctx.send(node, Msg::Announce { lit, at, seq, instance });
                    }
                }
            }
            let st = self.lit_state_ref(lit);
            if st.attempted && !st.forced {
                self.reply_agent(ctx, Msg::Granted { lit });
            }
            let other = lit.complement();
            let ost = self.lit_state_ref(other);
            if ost.attempted && !ost.forced {
                self.reply_agent(ctx, Msg::Rejected { lit: other });
            }
            return;
        }
        for l in [Literal::pos(self.sym), Literal::neg(self.sym)] {
            let st = self.lit_state(l);
            st.requested_promises.clear();
            st.notyet_pending.clear();
        }
        self.after_fact(ctx, None);
    }

    fn on_release(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        // Clear every hold whose requester lives at the releasing actor.
        let before = self.holds.len();
        self.holds.retain(|h| self.routing.actor_of.get(&h.symbol()) != Some(&from));
        if self.holds.len() != before {
            self.journal(ctx.now(), JournalKind::Released(Literal::pos(self.sym)));
        }
        if self.holds.is_empty() {
            self.after_fact(ctx, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_state_construction() {
        let g = Guard::top();
        let st = LitState::new(g.clone(), EventAttrs::controllable());
        assert_eq!(st.guard, g);
        assert!(!st.attempted);
        assert!(!st.promised_out);
    }
    // Full actor behavior is exercised through the executor integration
    // tests in `exec.rs` and `tests/` — the actor is meaningless without
    // a network around it.
}
