//! Multi-tenant instance engine: many concurrent workflow instances,
//! multiplexed over shared compiled artifacts and (optionally) sharded
//! across OS threads.
//!
//! The paper's scheduler is specified per workflow *template*; a real
//! deployment runs many live *instances* of a few templates at once.
//! This engine admits a seeded stream of [`Arrival`]s, instantiates each
//! one by cloning a single prototype [`BuiltWorkflow`] per template (the
//! compiled [`event_algebra::DependencyMachine`] tables are `Arc`-shared,
//! so per-instance dependency state collapses to one `StateId` per
//! dependency plus the guard-literal bitmaps inside each actor), and
//! interleaves their deterministic networks under one fleet clock.
//!
//! **Isolation by construction.** Every instance owns its own seeded
//! [`sim::Network`], its announcements and envelopes are stamped with its
//! [`InstanceId`] (and filtered on receipt), and its write-ahead-log
//! slice in the shared [`NodeStore`] is keyed by `(instance, node)`. The
//! multiplexer's interleaving therefore cannot affect any instance's
//! result: a tenant run of instance *i* is byte-identical to an
//! independent [`crate::run_workflow_with_faults`] of the same spec,
//! seed and fault plan. The ninth conformance audit
//! (`testkit::conformance::audit_tenant_isolation`) checks exactly this
//! equivalence end-to-end, and [`TenantConfig::cross_wire`] is the
//! mutation knob that proves the audit can fail.

use crate::exec::{
    build_workflow, collect_report, guard_gated, wrap_nodes, BuiltWorkflow, ExecConfig, NetNode,
    Node, RunReport, WorkflowSpec,
};
use crate::journal::NodeStore;
use crate::msg::{InstanceId, Msg};
use event_algebra::Literal;
use monitor::WorkflowMonitor;
use obs::{EventSink, MetricsRegistry, MetricsSnapshot, Obs};
use sim::{FaultPlan, Network, Termination, Time};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One instance admission: which template to instantiate, when it
/// arrives on the fleet clock, and the seed that makes its execution
/// reproducible in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Unique id of this instance across the whole fleet.
    pub instance: InstanceId,
    /// Index into the spec-template slice passed to [`run_tenant`].
    pub spec_ix: usize,
    /// Fleet-clock time at which the instance is admitted.
    pub at: Time,
    /// Seed of the instance's own network; together with the template
    /// and fault plan it fully determines the instance's execution.
    pub seed: u64,
    /// Per-instance think-time overrides: each driven free event whose
    /// literal appears here is attempted at the given instance-local
    /// time instead of the template's `attempt_after`. Events the
    /// template never drives (`attempt_after: None`) are not affected.
    pub think: Vec<(Literal, Time)>,
}

impl Arrival {
    /// A plain arrival with no think-time overrides.
    pub fn new(instance: u64, spec_ix: usize, at: Time, seed: u64) -> Arrival {
        Arrival { instance: InstanceId(instance), spec_ix, at, seed, think: Vec::new() }
    }

    /// The template specialized to this arrival: think-time overrides
    /// folded into `attempt_after`. Running this spec through the
    /// single-instance executor with [`TenantConfig::instance_exec`]
    /// reproduces the instance's tenant execution exactly — the
    /// differential baseline the conformance audit compares against.
    pub fn apply_to_spec(&self, spec: &WorkflowSpec) -> WorkflowSpec {
        let mut out = spec.clone();
        for &(lit, t) in &self.think {
            for f in &mut out.free_events {
                if f.lit == lit && f.attempt_after.is_some() {
                    // `t.max(1)` and the injection path's
                    // `saturating_sub(1)` agree for every `t` (0 and 1
                    // both mean "at start").
                    f.attempt_after = Some(t.max(1));
                }
            }
        }
        out
    }
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Base executor configuration shared by every instance (each
    /// instance's network seed comes from its [`Arrival`], not from
    /// here). Journals and flight recording are per-run artifacts and
    /// are forced off inside the fleet.
    pub exec: ExecConfig,
    /// Fault plan applied to every instance's network (cloned per
    /// instance, so fault decisions are also per-instance
    /// deterministic). Installing one materializes the shared
    /// instance-keyed write-ahead log.
    pub plan: Option<FaultPlan>,
    /// Number of OS threads the fleet is sharded over (arrivals are
    /// partitioned round-robin). `0` and `1` both mean sequential.
    pub shards: usize,
    /// Deliveries granted to an instance each time the multiplexer
    /// picks it.
    pub quantum: u64,
    /// Mutation knob for the conformance audit: the named instance's
    /// actors stamp their announcements with the *wrong* instance id,
    /// so receivers (correctly) reject them and the instance diverges
    /// from its isolated baseline. Healthy fleets leave this `None`.
    pub cross_wire: Option<InstanceId>,
}

impl TenantConfig {
    /// A sequential fleet with no faults.
    pub fn new(exec: ExecConfig) -> TenantConfig {
        TenantConfig { exec, plan: None, shards: 1, quantum: 64, cross_wire: None }
    }

    /// The [`ExecConfig`] an *independent* run of `arrival` uses: the
    /// base config with the arrival's seed, journal/recording off —
    /// exactly what the fleet runs for that instance.
    pub fn instance_exec(&self, arrival: &Arrival) -> ExecConfig {
        let mut exec = self.exec.clone();
        exec.sim.seed = arrival.seed;
        exec.journal = false;
        exec.record = None;
        exec
    }
}

/// One finished instance.
#[derive(Debug)]
pub struct InstanceOutcome {
    /// The instance's id.
    pub instance: InstanceId,
    /// Which template it ran.
    pub spec_ix: usize,
    /// Fleet-clock admission time.
    pub arrived_at: Time,
    /// Fleet-clock completion time (`arrived_at + report.duration`).
    pub finished_at: Time,
    /// Foreign envelopes the instance's transport dropped (always 0
    /// unless something is genuinely cross-wired).
    pub cross_instance_dropped: u64,
    /// The instance's full run report — identical to what an
    /// independent single-instance run of the same seed produces.
    pub report: RunReport,
}

/// Fleet-level roll-up of a tenant run.
#[derive(Debug)]
pub struct TenantReport {
    /// Per-instance outcomes, sorted by instance id.
    pub instances: Vec<InstanceOutcome>,
    /// Total event occurrences across the fleet.
    pub events: u64,
    /// Instances that converged.
    pub quiesced: usize,
    /// Instances that ran out of delivery budget (reported honestly,
    /// never silently upgraded to success).
    pub exhausted: usize,
    /// Fleet-clock time at which the last instance finished.
    pub makespan: Time,
    /// Foreign envelopes dropped by transports, fleet-wide.
    pub cross_instance_dropped: u64,
    /// Foreign announcements rejected by actors, fleet-wide.
    pub cross_instance_rejected: u64,
    /// Monitor alerts raised across the fleet (0 when monitors are not
    /// armed). Per-kind and per-shard breakdowns live in
    /// [`TenantReport::metrics`] (`tenant.monitor.*`, `tenant.shard.*`).
    pub monitor_alerts: u64,
    /// Violation-class monitor alerts across the fleet (the subset of
    /// [`TenantReport::monitor_alerts`] where
    /// [`monitor::AlertKind::is_violation`] holds).
    pub monitor_violations: u64,
    /// Fleet metrics: instance/event counters, the firing-latency
    /// histogram (`tenant.fire_latency`: instance-local time from
    /// admission to each occurrence), instance-duration histogram, and —
    /// when monitors are armed — fleet monitor telemetry
    /// (`tenant.monitor.facts` / `.guard_checks` / `.alerts` by kind)
    /// plus per-shard counters labeled by multiplexer shard
    /// (`tenant.shard.instances` / `.events` / `.monitor_alerts` /
    /// `.guard_checks`).
    pub metrics: MetricsSnapshot,
    /// The shared instance-keyed write-ahead log, when a fault plan
    /// made one necessary.
    pub wal: Option<NodeStore>,
    /// Wall-clock nanoseconds the fleet took (the only nondeterministic
    /// field; everything else is a pure function of inputs).
    pub wall_ns: u64,
}

impl TenantReport {
    /// `true` when every instance converged with all dependencies
    /// satisfied.
    pub fn all_satisfied(&self) -> bool {
        self.exhausted == 0 && self.instances.iter().all(|o| o.report.all_satisfied())
    }

    /// Quantile of the firing-latency histogram (instance-local ticks
    /// from admission to occurrence), rounded down to a log2 bucket
    /// lower bound. Returns 0 when no event fired.
    pub fn fire_quantile(&self, q: f64) -> u64 {
        self.metrics.histogram("tenant.fire_latency", &[]).map_or(0, |h| h.quantile(q))
    }

    /// Completed instances per wall-clock second.
    pub fn instances_per_sec(&self) -> f64 {
        self.instances.len() as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Event occurrences per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// A live instance inside one shard's multiplexer.
struct LiveInstance {
    arrival: Arrival,
    net: Network<Msg, NetNode>,
    mon: Option<Arc<WorkflowMonitor>>,
    steps: u64,
    /// `step()` returned `false`: converged before the budget.
    quiescent: bool,
}

impl LiveInstance {
    /// Fleet-clock position: admission time plus local virtual time.
    fn position(&self) -> Time {
        self.arrival.at + self.net.now()
    }
}

/// Run a fleet of workflow instances to completion.
///
/// `specs` are the templates; each [`Arrival`] names one by index. The
/// result is deterministic (up to `wall_ns`) for fixed inputs,
/// regardless of `shards`.
///
/// # Panics
///
/// Panics when an arrival's `spec_ix` is out of range or two arrivals
/// share an [`InstanceId`] (ids key the shared write-ahead log, so a
/// collision would silently entangle two instances' recovery state).
pub fn run_tenant(
    specs: &[WorkflowSpec],
    arrivals: &[Arrival],
    config: &TenantConfig,
) -> TenantReport {
    let started = std::time::Instant::now();
    let mut seen = std::collections::BTreeSet::new();
    for a in arrivals {
        assert!(
            a.spec_ix < specs.len(),
            "arrival {} names spec {} of {}",
            a.instance,
            a.spec_ix,
            specs.len()
        );
        assert!(seen.insert(a.instance), "duplicate instance id {}", a.instance);
    }
    // One compiled prototype per template: guards compiled once,
    // dependency machines Arc'd once, shared by every clone below.
    let mut proto_exec = config.exec.clone();
    proto_exec.journal = false;
    proto_exec.record = None;
    let protos: Vec<BuiltWorkflow> =
        specs.iter().map(|s| build_workflow(s, proto_exec.clone())).collect();
    // The WAL is shared across the whole fleet and keyed by
    // (instance, node) — the point of the instance-keyed store.
    let wal = config.plan.is_some().then(NodeStore::new);

    let shards = config.shards.max(1).min(arrivals.len().max(1));
    let mut outcomes: Vec<InstanceOutcome> = if shards <= 1 {
        run_shard(specs, &protos, arrivals.to_vec(), config, wal.clone())
    } else {
        let mut parts: Vec<Vec<Arrival>> = vec![Vec::new(); shards];
        for (ix, a) in arrivals.iter().enumerate() {
            parts[ix % shards].push(a.clone());
        }
        let protos = &protos;
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    let wal = wal.clone();
                    scope.spawn(move || run_shard(specs, protos, part, config, wal))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tenant shard thread panicked"))
                .collect()
        })
    };
    outcomes.sort_by_key(|o| o.instance);

    // ----- fleet roll-up -----
    // Which multiplexer shard ran each instance (the round-robin
    // partition above) — keys the per-shard telemetry labels.
    let shard_of: BTreeMap<InstanceId, usize> =
        arrivals.iter().enumerate().map(|(ix, a)| (a.instance, ix % shards)).collect();
    let reg = MetricsRegistry::new();
    let mut events = 0u64;
    let mut quiesced = 0usize;
    let mut exhausted = 0usize;
    let mut makespan = 0;
    let mut cross_dropped = 0u64;
    let mut cross_rejected = 0u64;
    let mut monitor_alerts = 0u64;
    let mut monitor_violations = 0u64;
    let mut monitor_facts = 0u64;
    let mut monitor_guard_checks = 0u64;
    for o in &outcomes {
        for &(_, t, _) in &o.report.occurrences {
            reg.observe("tenant.fire_latency", &[], t);
            events += 1;
        }
        reg.observe("tenant.instance_duration", &[], o.report.duration);
        match o.report.termination {
            Termination::Quiescent => quiesced += 1,
            Termination::BudgetExhausted => exhausted += 1,
        }
        makespan = makespan.max(o.finished_at);
        cross_dropped += o.cross_instance_dropped;
        cross_rejected +=
            o.report.actor_stats.values().map(|s| s.cross_instance_rejected).sum::<u64>();
        let shard = shard_of[&o.instance].to_string();
        let by_shard: &[(&str, &str)] = &[("shard", &shard)];
        reg.add("tenant.shard.instances", by_shard, 1);
        reg.add("tenant.shard.events", by_shard, o.report.occurrences.len() as u64);
        if let Some(m) = &o.report.monitor {
            monitor_facts += m.facts;
            monitor_guard_checks += m.guard_checks;
            for alert in &m.alerts {
                monitor_alerts += 1;
                if alert.kind.is_violation() {
                    monitor_violations += 1;
                }
                reg.add("tenant.monitor.alerts", &[("kind", alert.kind.tag())], 1);
            }
            reg.add("tenant.shard.monitor_alerts", by_shard, m.alerts.len() as u64);
            reg.add("tenant.shard.guard_checks", by_shard, m.guard_checks);
        }
    }
    if outcomes.iter().any(|o| o.report.monitor.is_some()) {
        reg.add("tenant.monitor.facts", &[], monitor_facts);
        reg.add("tenant.monitor.guard_checks", &[], monitor_guard_checks);
        reg.add("tenant.monitor.violations", &[], monitor_violations);
    }
    reg.add("tenant.instances", &[], outcomes.len() as u64);
    reg.add("tenant.events", &[], events);
    reg.add("tenant.quiesced", &[], quiesced as u64);
    reg.add("tenant.exhausted", &[], exhausted as u64);
    reg.add("tenant.cross_instance_dropped", &[], cross_dropped);
    reg.add("tenant.cross_instance_rejected", &[], cross_rejected);
    reg.set_gauge("tenant.makespan", &[], makespan as i64);
    reg.set_gauge("tenant.shards", &[], shards as i64);
    if let Some(w) = &wal {
        reg.add("tenant.wal_entries", &[], w.total() as u64);
    }
    TenantReport {
        instances: outcomes,
        events,
        quiesced,
        exhausted,
        makespan,
        cross_instance_dropped: cross_dropped,
        cross_instance_rejected: cross_rejected,
        monitor_alerts,
        monitor_violations,
        metrics: reg.snapshot(),
        wal,
        wall_ns: started.elapsed().as_nanos() as u64,
    }
}

/// Sequentially multiplex one shard's arrivals: admit on the fleet
/// clock, always advance the furthest-behind live instance by one
/// quantum of deliveries, finalize instances as they converge (or
/// honestly exhaust their budget).
fn run_shard(
    specs: &[WorkflowSpec],
    protos: &[BuiltWorkflow],
    mut arrivals: Vec<Arrival>,
    config: &TenantConfig,
    wal: Option<NodeStore>,
) -> Vec<InstanceOutcome> {
    arrivals.sort_by_key(|a| (a.at, a.instance));
    let mut pending: VecDeque<Arrival> = arrivals.into();
    let mut live: Vec<LiveInstance> = Vec::new();
    let mut done: Vec<InstanceOutcome> = Vec::new();
    let max_steps = if config.exec.max_steps == 0 { 1_000_000 } else { config.exec.max_steps };
    let quantum = config.quantum.max(1);
    let mut fleet_now: Time = 0;
    loop {
        while pending.front().is_some_and(|a| a.at <= fleet_now) {
            let a = pending.pop_front().expect("front checked");
            live.push(admit(specs, protos, a, config, wal.clone()));
        }
        if live.is_empty() {
            match pending.front() {
                Some(a) => {
                    // Idle gap on the fleet clock: jump to the next
                    // admission.
                    fleet_now = a.at;
                    continue;
                }
                None => break,
            }
        }
        // The instance furthest behind on the fleet clock runs next
        // (instance id breaks ties deterministically).
        let ix = (0..live.len())
            .min_by_key(|&i| (live[i].position(), live[i].arrival.instance))
            .expect("live is non-empty");
        let inst = &mut live[ix];
        for _ in 0..quantum {
            if inst.steps >= max_steps {
                break;
            }
            if !inst.net.step() {
                inst.quiescent = true;
                break;
            }
            inst.steps += 1;
        }
        let finished = inst.quiescent || inst.steps >= max_steps;
        fleet_now = fleet_now.max(inst.position());
        if finished {
            let inst = live.swap_remove(ix);
            done.push(finalize(specs, protos, inst, max_steps));
        }
    }
    done
}

/// Instantiate one arrival: clone the prototype's roles, stamp them with
/// the instance id, wrap them in the fault-tolerance machinery against
/// the shared WAL, and seed the instance's own network.
fn admit(
    specs: &[WorkflowSpec],
    protos: &[BuiltWorkflow],
    arrival: Arrival,
    config: &TenantConfig,
    wal: Option<NodeStore>,
) -> LiveInstance {
    let spec = &specs[arrival.spec_ix];
    let proto = &protos[arrival.spec_ix];
    // Per-instance monitors, exactly as the single-instance executor
    // arms them.
    let mon = config.exec.monitor.map(|mc| {
        // Reuse the prototype's compiled guards: a fleet arms one
        // monitor per instance, and recompiling per admission would
        // dominate small-instance runtimes.
        let m = WorkflowMonitor::from_compiled(
            &spec.table,
            Arc::clone(&proto.guards),
            guard_gated(spec),
            mc,
        );
        if let Some(plan) = &config.exec.shard_plan {
            m.set_shard_plan(Arc::clone(plan));
        }
        Arc::new(m)
    });
    // Fused by default (the monitor is stepped directly by the actors,
    // so the disabled Obs below never constructs a span); oracle mode
    // subscribes it as a sink, exactly as the single-instance executor.
    let sinks: Vec<Arc<dyn EventSink>> = if config.exec.monitor_oracle {
        mon.iter().map(|m| Arc::clone(m) as Arc<dyn EventSink>).collect()
    } else {
        Vec::new()
    };
    let obs = Obs::with_sinks(None, sinks);
    let fused = if config.exec.monitor_oracle { None } else { mon.clone() };
    // The cross-wire mutation stamps this instance's *outgoing*
    // announcements with a foreign id; its own actors then reject them,
    // which the isolation audit must notice as divergence from the
    // instance's isolated baseline.
    let announce_as = if config.cross_wire == Some(arrival.instance) {
        InstanceId(arrival.instance.0.wrapping_add(1))
    } else {
        arrival.instance
    };
    let nodes: Vec<_> = proto
        .nodes
        .iter()
        .map(|(site, role)| {
            let mut role = role.clone();
            if let Node::Actor(a) = &mut role {
                a.instance = arrival.instance;
                a.announce_instance = announce_as;
            }
            (*site, role)
        })
        .collect();
    let wrapped = wrap_nodes(nodes, config.exec.reliable, wal, None, &obs, fused, arrival.instance);
    let mut sim_cfg = config.exec.sim;
    sim_cfg.seed = arrival.seed;
    let mut net: Network<Msg, NetNode> = Network::new(sim_cfg, wrapped);
    net.set_recorder(obs, Msg::kind_label);
    if let Some(plan) = &config.plan {
        net.set_faults(plan.clone());
    }
    let think: BTreeMap<Literal, Time> = arrival.think.iter().copied().collect();
    for (from, to, msg, extra) in &proto.injections {
        let extra = match msg.literal().and_then(|l| think.get(&l)) {
            // Same "at start" convention as the template path: the
            // injection itself pays a 1-tick latency.
            Some(&t) => t.saturating_sub(1),
            None => *extra,
        };
        net.inject_after(*from, *to, msg.clone(), extra);
    }
    LiveInstance { arrival, net, mon, steps: 0, quiescent: false }
}

/// Tear one finished instance down into its outcome, mirroring the
/// single-instance executor's post-run sequence (same termination
/// honesty, same report assembly, same monitor finish).
fn finalize(
    specs: &[WorkflowSpec],
    protos: &[BuiltWorkflow],
    inst: LiveInstance,
    max_steps: u64,
) -> InstanceOutcome {
    let LiveInstance { arrival, net, mon, steps, quiescent } = inst;
    let spec = &specs[arrival.spec_ix];
    let proto = &protos[arrival.spec_ix];
    let termination = if quiescent || net.idle() {
        Termination::Quiescent
    } else {
        debug_assert!(steps >= max_steps);
        Termination::BudgetExhausted
    };
    let duration = net.now();
    let stats = net.stats().clone();
    let fault_stats = net.fault_stats().copied();
    let mut cross_dropped = 0u64;
    let roles: Vec<Node> = net
        .into_nodes()
        .into_iter()
        .map(|n| {
            if let Some(r) = &n.reliable {
                cross_dropped += r.cross_instance_dropped;
            }
            n.role
        })
        .collect();
    let mut report = collect_report(
        spec,
        &proto.symbols,
        |s| proto.routing.actor_of[&s].0 as usize,
        &roles,
        duration,
        sim::RunOutcome { steps, termination },
        stats,
    );
    if let Some(fs) = fault_stats {
        report.fault_stats = Some(fs);
    }
    if let Some(m) = mon {
        let mrep = m.finish(duration);
        report.alerts = mrep.alerts.clone();
        report.monitor = Some(mrep);
    }
    InstanceOutcome {
        instance: arrival.instance,
        spec_ix: arrival.spec_ix,
        arrived_at: arrival.at,
        finished_at: arrival.at + duration,
        cross_instance_dropped: cross_dropped,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FreeEventSpec;
    use agent::EventAttrs;
    use event_algebra::{parse_expr, SymbolTable};
    use sim::SiteId;

    fn mutual_spec() -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut table).unwrap();
        let d2 = parse_expr("~f + e", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        WorkflowSpec {
            table,
            dependencies: vec![d1, d2],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        }
    }

    /// `D<`: e must precede f. f's firing waits on e's `□`-announcement,
    /// so a cross-wired instance (whose announcements are rejected)
    /// visibly wedges — unlike the mutual-promise spec, which resolves
    /// through the promise round alone.
    fn precedence_spec() -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        }
    }

    fn fleet(n: u64) -> Vec<Arrival> {
        (0..n).map(|i| Arrival::new(i, 0, i * 3, 0x9E37 ^ i)).collect()
    }

    #[test]
    fn tenant_matches_independent_runs() {
        let spec = mutual_spec();
        let config = TenantConfig::new(ExecConfig::seeded(0));
        let arrivals = fleet(8);
        let rep = run_tenant(std::slice::from_ref(&spec), &arrivals, &config);
        assert_eq!(rep.instances.len(), 8);
        assert!(rep.all_satisfied(), "{rep:?}");
        assert_eq!(rep.cross_instance_dropped, 0);
        assert_eq!(rep.cross_instance_rejected, 0);
        for (a, o) in arrivals.iter().zip(&rep.instances) {
            let solo = crate::run_workflow(&spec, config.instance_exec(a));
            assert_eq!(o.report.occurrences, solo.occurrences, "instance {}", a.instance);
            assert_eq!(o.report.duration, solo.duration, "instance {}", a.instance);
            assert_eq!(o.report.steps, solo.steps, "instance {}", a.instance);
        }
    }

    #[test]
    fn sharded_fleet_is_deterministic() {
        let spec = mutual_spec();
        let arrivals = fleet(12);
        let mut c1 = TenantConfig::new(ExecConfig::seeded(0));
        c1.shards = 1;
        let mut c4 = TenantConfig::new(ExecConfig::seeded(0));
        c4.shards = 4;
        let r1 = run_tenant(std::slice::from_ref(&spec), &arrivals, &c1);
        let r4 = run_tenant(&[spec], &arrivals, &c4);
        assert_eq!(r1.events, r4.events);
        assert_eq!(r1.makespan, r4.makespan);
        for (a, b) in r1.instances.iter().zip(&r4.instances) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.report.occurrences, b.report.occurrences);
        }
    }

    #[test]
    fn cross_wired_instance_diverges_and_is_counted() {
        let spec = precedence_spec();
        let arrivals = fleet(3);
        let mut config = TenantConfig::new(ExecConfig::seeded(0));
        config.cross_wire = Some(InstanceId(1));
        let rep = run_tenant(&[spec], &arrivals, &config);
        assert!(rep.cross_instance_rejected > 0, "mutation must be visible: {rep:?}");
        let mutant = &rep.instances[1];
        assert!(
            mutant.report.trace.len() < 2,
            "cross-wired instance should wedge on the rejected announcement: {:?}",
            mutant.report
        );
        // The healthy neighbours are untouched: both events fire.
        for o in [&rep.instances[0], &rep.instances[2]] {
            assert_eq!(o.report.trace.len(), 2, "{:?}", o.report);
            assert!(o.report.all_satisfied(), "{:?}", o.report);
        }
    }

    #[test]
    fn think_overrides_match_specialized_spec() {
        let spec = mutual_spec();
        let f = spec.free_events[1].lit;
        let mut a = Arrival::new(0, 0, 0, 42);
        a.think = vec![(f, 37)];
        let config = TenantConfig::new(ExecConfig::seeded(0));
        let rep = run_tenant(std::slice::from_ref(&spec), std::slice::from_ref(&a), &config);
        let solo = crate::run_workflow(&a.apply_to_spec(&spec), config.instance_exec(&a));
        assert_eq!(rep.instances[0].report.occurrences, solo.occurrences);
        assert_eq!(rep.instances[0].report.duration, solo.duration);
    }
}
