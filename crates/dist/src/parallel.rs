//! The work-stealing parallel runtime (ROADMAP item 2): workflows and
//! whole fleets execute on [`sim::run_sharded`], with nodes grouped into
//! shards by **certified [`ShardPlan`] colocation classes** — the
//! interference analyzer's artifact — falling back to the Lemma 5
//! site-coupling classes ([`ShardPlan::from_coupling`]) when no plan is
//! supplied.
//!
//! # Why colocation classes are the shard key
//!
//! A certified plan promises that symbols in *different* classes only
//! interact through commuting fact applications, so batching each
//! class's deliveries on its own shard (and letting rounds of different
//! shards execute on different worker threads) reorders exactly the
//! message interleavings the plan certifies as harmless. The
//! single-queue [`sim::Network`] stays the conformance oracle: the tenth
//! audit (`testkit::conformance::audit_parallel_conformance`) replays
//! every parallel run against it and diffs occurrence sets, unresolved
//! symbols, final □-views and dependency verdicts, and
//! `audit_schedule_races` is the transposition-level safety net that
//! catches a forged independence claim.
//!
//! # Scope
//!
//! This is the fault-free fast path: journals, flight recorders and the
//! fault layer all assume the single-queue delivery order and are forced
//! off here ([`crate::run_workflow_with_faults`] ignores
//! [`ExecConfig::parallel`] entirely). Armed monitors *do* run — but not
//! online: a barrier round delivers disjoint per-shard sequence ranges
//! concurrently, so an online monitor could observe a later sequence
//! number before an earlier one without either being a replay trigger,
//! transiently mis-stepping sequence-chain machines into false
//! violations. Instead the monitor **replays the run's occurrence log in
//! global sequence order after the run** — the same canonical order the
//! single-queue simulator feeds it online — so dependency verdicts,
//! guard-faithfulness checks and the final complement sweep are judged
//! identically (stall watchdogs don't apply post-hoc, and the □-view
//! divergence audit is already performed by `collect_report`). Timing-
//! level results differ from the single-queue simulator only in the
//! latency stream (sampled statelessly per send so workers can route in
//! parallel, not from the oracle's serial RNG); logical results — which
//! events occur, the final views, the verdicts — must not differ at
//! all, and the audits exist to prove it.

use crate::actor::Routing;
use crate::exec::{
    build_workflow, collect_report, guard_gated, BuiltWorkflow, ExecConfig, Node, RunReport,
    WorkflowSpec,
};
use crate::msg::{InstanceId, Msg};
use crate::tenant::Arrival;
use event_algebra::{Literal, ShardPlan, SymbolId};
use guard::{CompiledWorkflow, GuardScope};
use monitor::{MonitorConfig, WorkflowMonitor};
use obs::{MetricsRegistry, MetricsSnapshot, ObsLit};
use sim::{NodeId, ParallelStats, RunOutcome, SiteId, Termination, Time};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Result of one parallel single-workflow run: the ordinary report plus
/// the parallel-runtime breakdown and the plan that keyed the shards.
#[derive(Debug)]
pub struct ParallelRun {
    /// The run report, shaped exactly like the single-queue executor's
    /// (metrics carry the `parallel.*` key family on top).
    pub report: RunReport,
    /// Rounds, steals, per-worker loads, modeled makespans.
    pub stats: ParallelStats,
    /// The colocation plan that keyed the shards (the supplied certified
    /// plan, or the Lemma 5 coupling fallback).
    pub plan: Arc<ShardPlan>,
    /// The shard index of every node, in node order — exposed so audits
    /// can check the class→shard mapping.
    pub shard_of: Vec<usize>,
}

/// One finished instance of a parallel fleet run.
#[derive(Debug)]
pub struct ParallelInstanceOutcome {
    /// The instance's id.
    pub instance: InstanceId,
    /// Which template it ran.
    pub spec_ix: usize,
    /// Fleet-clock admission time.
    pub arrived_at: Time,
    /// Fleet-clock time of the instance's last delivery.
    pub finished_at: Time,
    /// The instance's report. Occurrence timestamps and sequence numbers
    /// are *fleet-clock* values (instances share one virtual clock and
    /// one delivery sequence); `net` is empty — traffic is accounted
    /// fleet-wide on [`ParallelFleetReport::net`].
    pub report: RunReport,
}

/// Fleet-level roll-up of a parallel fleet run.
#[derive(Debug)]
pub struct ParallelFleetReport {
    /// Per-instance outcomes, in arrival order.
    pub instances: Vec<ParallelInstanceOutcome>,
    /// Total event occurrences across the fleet.
    pub events: u64,
    /// Instances whose run converged (fleet-wide termination: either
    /// every instance quiesced or the shared budget ran out).
    pub quiesced: usize,
    /// Instances counted under a budget-exhausted fleet.
    pub exhausted: usize,
    /// Fleet-wide traffic statistics.
    pub net: sim::NetStats,
    /// Rounds, steals, per-worker loads, modeled makespans, wall clock.
    pub stats: ParallelStats,
    /// Fleet metrics (`parallel.*`, `net.*`, instance/event counters).
    pub metrics: MetricsSnapshot,
}

impl ParallelFleetReport {
    /// `true` when the fleet converged with every dependency of every
    /// instance satisfied.
    pub fn all_satisfied(&self) -> bool {
        self.exhausted == 0 && self.instances.iter().all(|o| o.report.all_satisfied())
    }

    /// Event occurrences per *measured* wall-clock second.
    pub fn events_per_sec_wall(&self) -> f64 {
        self.events as f64 / (self.stats.wall_ns.max(1) as f64 / 1e9)
    }

    /// Event occurrences per second at a *modeled* worker count: the
    /// scheduled-makespan throughput `events / modeled_ns(workers)` (see
    /// [`sim::ParallelConfig::model_workers`]). `None` when that count
    /// was not modeled.
    pub fn events_per_sec_modeled(&self, workers: usize) -> Option<f64> {
        self.stats
            .modeled_ns
            .iter()
            .find(|&&(k, _)| k == workers)
            .map(|&(_, ns)| self.events as f64 / (ns.max(1) as f64 / 1e9))
    }
}

/// The colocation plan the parallel runtime shards by: the certified
/// plan from `config` when present, otherwise the conservative Lemma 5
/// site-coupling fallback computed from the spec's compiled dependency
/// machines (which colocates every non-commuting pair and certifies no
/// independence).
pub fn effective_plan(spec: &WorkflowSpec, config: &ExecConfig) -> Arc<ShardPlan> {
    if let Some(plan) = &config.shard_plan {
        return Arc::clone(plan);
    }
    let compiled = CompiledWorkflow::compile(&spec.dependencies, GuardScope::Mentioning);
    let symbols: Vec<SymbolId> = compiled.symbols.iter().copied().collect();
    Arc::new(ShardPlan::from_coupling(&symbols, &compiled.machines))
}

/// One shard index per node of `built`, in node order: every actor goes
/// to its symbol's colocation class (symbols the plan does not analyze
/// get fresh singleton classes), and each agent — and the lazy-mode
/// ticker — gets its own shard after the class shards: agents only talk
/// to actors, so no class invariant constrains their placement, and a
/// private shard keeps their script-driving off the actors' batches.
pub fn shard_assignment(built: &BuiltWorkflow, plan: &ShardPlan) -> Vec<usize> {
    let keys = plan.shard_keys(&built.symbols);
    let mut next =
        keys.iter().copied().max().map_or(plan.class_count(), |m| (m + 1).max(plan.class_count()));
    let mut actor_ix = 0usize;
    built
        .nodes
        .iter()
        .map(|(_, node)| match node {
            Node::Actor(_) => {
                let k = keys[actor_ix];
                actor_ix += 1;
                k
            }
            Node::Agent(_) | Node::Ticker { .. } => {
                let k = next;
                next += 1;
                k
            }
        })
        .collect()
}

/// Record the parallel-runtime breakdown into `reg` under the
/// `parallel.*` key family; per-worker delivered / steal / queue-depth
/// counters carry a `worker` label.
pub fn record_parallel(reg: &MetricsRegistry, stats: &ParallelStats) {
    reg.set_gauge("parallel.workers", &[], stats.workers as i64);
    reg.set_gauge("parallel.shards", &[], stats.shards as i64);
    reg.add("parallel.rounds", &[], stats.rounds);
    reg.add("parallel.steals", &[], stats.steals);
    reg.set_gauge("parallel.max_round_width", &[], stats.max_round_width as i64);
    for (w, load) in stats.per_worker.iter().enumerate() {
        let wl = w.to_string();
        let labels: &[(&str, &str)] = &[("worker", &wl)];
        reg.add("parallel.worker.delivered", labels, load.delivered);
        reg.add("parallel.worker.steals", labels, load.steals);
        reg.set_gauge("parallel.worker.queue_depth", labels, load.max_queue_depth as i64);
    }
}

/// Arm the online monitors for one finished parallel run: replay the
/// occurrence log in global sequence order (the canonical order the
/// single-queue simulator feeds monitors online — see the module docs
/// for why online feeding is unsound here), finish on the run's
/// duration, and record the `monitor.*` metric family into `reg`.
fn replay_monitor(
    spec: &WorkflowSpec,
    guards: &Arc<CompiledWorkflow>,
    plan: &Arc<ShardPlan>,
    node_of: impl Fn(SymbolId) -> u32,
    config: MonitorConfig,
    report: &mut RunReport,
    reg: &MetricsRegistry,
) {
    let m =
        WorkflowMonitor::from_compiled(&spec.table, Arc::clone(guards), guard_gated(spec), config);
    m.set_shard_plan(Arc::clone(plan));
    let mut ordered = report.occurrences.clone();
    ordered.sort_by_key(|&(_, _, q)| q);
    for (l, t, q) in ordered {
        m.on_occurrence(t, node_of(l.symbol()), ObsLit(l.index() as u32), q);
    }
    let mrep = m.finish(report.duration);
    reg.add("monitor.facts", &[], mrep.facts);
    reg.add("monitor.guard_checks", &[], mrep.guard_checks);
    for alert in &mrep.alerts {
        reg.add("monitor.alerts", &[("kind", alert.kind.tag())], 1);
    }
    for (ix, v) in mrep.verdicts.iter().enumerate() {
        reg.add("monitor.verdicts", &[("dep", &ix.to_string()), ("verdict", v.label())], 1);
    }
    report.alerts = mrep.alerts.clone();
    report.monitor = Some(mrep);
}

/// Compile and run one workflow on the work-stealing parallel executor.
///
/// Logical results (occurrences, views, verdicts) match
/// [`crate::run_workflow`] on the single-queue simulator — the tenth
/// conformance audit's claim — and *all* results are identical for
/// every worker count. Journals and recorders are forced off; armed
/// monitors run by post-run sequence replay (see the module docs).
pub fn run_workflow_parallel(spec: &WorkflowSpec, config: &ExecConfig) -> ParallelRun {
    let mut exec = config.clone();
    exec.journal = false;
    exec.record = None;
    let monitor_cfg = exec.monitor.take();
    let par = exec.parallel.clone().unwrap_or_default();
    let plan = effective_plan(spec, &exec);
    let built = build_workflow(spec, exec.clone());
    let routing = Arc::clone(&built.routing);
    let shard_of = shard_assignment(&built, &plan);
    let max_steps = if exec.max_steps == 0 { 1_000_000 } else { exec.max_steps };
    let run = sim::run_sharded(built.nodes, &shard_of, built.injections, exec.sim, &par, max_steps);
    let mut report = collect_report(
        spec,
        &built.symbols,
        |s| routing.actor_of[&s].0 as usize,
        &run.nodes,
        run.stats.duration,
        run.outcome,
        run.net,
    );
    let reg = MetricsRegistry::new();
    report.net.record_into(&reg);
    reg.add("run.steps", &[], report.steps);
    reg.set_gauge("run.duration", &[], report.duration as i64);
    reg.set_gauge("shard.classes", &[], plan.class_count() as i64);
    record_parallel(&reg, &run.stats);
    if let Some(mc) = monitor_cfg {
        replay_monitor(
            spec,
            &built.guards,
            &plan,
            |s| routing.actor_of[&s].0,
            mc,
            &mut report,
            &reg,
        );
    }
    report.metrics = reg.snapshot();
    ParallelRun { report, stats: run.stats, plan, shard_of }
}

/// Rebuild `routing` with every [`NodeId`] offset by `base` — the
/// per-instance tables of a fleet clone.
fn offset_routing(routing: &Routing, base: u32) -> Routing {
    Routing {
        actor_of: routing.actor_of.iter().map(|(&s, &n)| (s, NodeId(n.0 + base))).collect(),
        agent_of: routing.agent_of.iter().map(|(&s, &n)| (s, NodeId(n.0 + base))).collect(),
        subscribers_of: routing
            .subscribers_of
            .iter()
            .map(|(&s, subs)| (s, subs.iter().map(|&n| NodeId(n.0 + base)).collect()))
            .collect(),
    }
}

/// Run a fleet of workflow instances on ONE sharded parallel network.
///
/// Unlike [`crate::tenant::run_tenant`] — which multiplexes one
/// [`sim::Network`] per instance and is byte-identical to isolated runs
/// — the parallel fleet merges every instance's nodes into a single
/// [`sim::run_sharded`] execution: instances share the virtual clock,
/// the delivery sequence and the latency stream, and each instance's
/// colocation classes get their own block of shards, so independent
/// instances (and independent classes within one instance) execute on
/// different workers. Isolation still holds logically — node-id spaces
/// are disjoint and announcements are instance-stamped — so each
/// instance's occurrence *set*, views and verdicts match its isolated
/// baseline; timestamps are fleet-clock values.
///
/// # Panics
///
/// Panics when an arrival's `spec_ix` is out of range or two arrivals
/// share an [`InstanceId`], exactly like the tenant engine.
pub fn run_parallel_fleet(
    specs: &[WorkflowSpec],
    arrivals: &[Arrival],
    config: &ExecConfig,
) -> ParallelFleetReport {
    let mut seen = std::collections::BTreeSet::new();
    for a in arrivals {
        assert!(
            a.spec_ix < specs.len(),
            "arrival {} names spec {} of {}",
            a.instance,
            a.spec_ix,
            specs.len()
        );
        assert!(seen.insert(a.instance), "duplicate instance id {}", a.instance);
    }
    let mut exec = config.clone();
    exec.journal = false;
    exec.record = None;
    let monitor_cfg = exec.monitor.take();
    let par = exec.parallel.clone().unwrap_or_default();
    let protos: Vec<BuiltWorkflow> =
        specs.iter().map(|s| build_workflow(s, exec.clone())).collect();
    let plans: Vec<Arc<ShardPlan>> = specs.iter().map(|s| effective_plan(s, &exec)).collect();
    let proto_shards: Vec<Vec<usize>> =
        protos.iter().zip(&plans).map(|(b, p)| shard_assignment(b, p)).collect();
    let proto_shard_count: Vec<usize> =
        proto_shards.iter().map(|s| s.iter().copied().max().map_or(0, |m| m + 1)).collect();

    let mut nodes: Vec<(SiteId, Node)> = Vec::new();
    let mut shard_of: Vec<usize> = Vec::new();
    let mut injections: Vec<(NodeId, NodeId, Msg, Time)> = Vec::new();
    // Per arrival: (first node id, node count, first shard, shard count).
    let mut spans: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(arrivals.len());
    let (mut node_base, mut shard_base) = (0usize, 0usize);
    for a in arrivals {
        let proto = &protos[a.spec_ix];
        let routing = Arc::new(offset_routing(&proto.routing, node_base as u32));
        for (site, role) in &proto.nodes {
            let mut role = role.clone();
            match &mut role {
                Node::Actor(actor) => {
                    actor.instance = a.instance;
                    actor.announce_instance = a.instance;
                    actor.routing = Arc::clone(&routing);
                }
                Node::Agent(agent) => agent.set_routing(Arc::clone(&routing)),
                Node::Ticker { actors, .. } => {
                    for id in actors.iter_mut() {
                        id.0 += node_base as u32;
                    }
                }
            }
            nodes.push((*site, role));
        }
        shard_of.extend(proto_shards[a.spec_ix].iter().map(|&s| shard_base + s));
        let think: BTreeMap<Literal, Time> = a.think.iter().copied().collect();
        for (from, to, msg, extra) in &proto.injections {
            // Same "at start" convention as the tenant path (the
            // injection pays a 1-tick latency), shifted to the arrival's
            // admission time on the shared fleet clock.
            let extra = match msg.literal().and_then(|l| think.get(&l)) {
                Some(&t) => t.saturating_sub(1),
                None => *extra,
            };
            injections.push((
                NodeId(from.0 + node_base as u32),
                NodeId(to.0 + node_base as u32),
                msg.clone(),
                extra + a.at,
            ));
        }
        spans.push((node_base, proto.nodes.len(), shard_base, proto_shard_count[a.spec_ix]));
        node_base += proto.nodes.len();
        shard_base += proto_shard_count[a.spec_ix];
    }

    let max_steps = if exec.max_steps == 0 { 1_000_000 } else { exec.max_steps };
    let run = sim::run_sharded(nodes, &shard_of, injections, exec.sim, &par, max_steps);

    let reg = MetricsRegistry::new();
    let mut outcomes = Vec::with_capacity(arrivals.len());
    let mut events = 0u64;
    let mut monitor_violations = 0u64;
    for (ix, a) in arrivals.iter().enumerate() {
        let (base, count, sbase, scount) = spans[ix];
        let proto = &protos[a.spec_ix];
        let last =
            run.stats.per_shard_last_time[sbase..sbase + scount].iter().copied().max().unwrap_or(0);
        let steps: u64 = run.stats.per_shard_delivered[sbase..sbase + scount].iter().sum();
        let mut report = collect_report(
            &specs[a.spec_ix],
            &proto.symbols,
            |s| proto.routing.actor_of[&s].0 as usize,
            &run.nodes[base..base + count],
            last.saturating_sub(a.at),
            RunOutcome { steps, termination: run.outcome.termination },
            sim::NetStats::default(),
        );
        if let Some(mc) = monitor_cfg {
            // Per-instance post-run replay; `monitor.*` counters
            // accumulate fleet-wide in the shared registry.
            replay_monitor(
                &specs[a.spec_ix],
                &proto.guards,
                &plans[a.spec_ix],
                |s| proto.routing.actor_of[&s].0,
                mc,
                &mut report,
                &reg,
            );
            monitor_violations +=
                report.alerts.iter().filter(|al| al.kind.is_violation()).count() as u64;
        }
        events += report.occurrences.len() as u64;
        outcomes.push(ParallelInstanceOutcome {
            instance: a.instance,
            spec_ix: a.spec_ix,
            arrived_at: a.at,
            finished_at: last.max(a.at),
            report,
        });
    }

    let (quiesced, exhausted) = match run.outcome.termination {
        Termination::Quiescent => (outcomes.len(), 0),
        Termination::BudgetExhausted => (0, outcomes.len()),
    };
    run.net.record_into(&reg);
    record_parallel(&reg, &run.stats);
    reg.add("parallel.instances", &[], outcomes.len() as u64);
    reg.add("parallel.events", &[], events);
    if monitor_cfg.is_some() {
        reg.add("parallel.monitor.violations", &[], monitor_violations);
    }
    ParallelFleetReport {
        instances: outcomes,
        events,
        quiesced,
        exhausted,
        net: run.net,
        stats: run.stats,
        metrics: reg.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FreeEventSpec;
    use agent::EventAttrs;
    use event_algebra::{parse_expr, SymbolTable};
    use sim::ParallelConfig;
    use std::collections::BTreeSet;

    /// A 4-stage pipeline of arrow dependencies — all fact applications
    /// commute, so the coupling fallback gives every symbol its own
    /// class and the run parallelizes across all four actors.
    fn pipeline_spec() -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let mut deps = Vec::new();
        for i in 0..3 {
            deps.push(parse_expr(&format!("~e{i} + e{}", i + 1), &mut table).unwrap());
        }
        let free_events = (0..4)
            .map(|i| FreeEventSpec {
                site: SiteId(i as u32),
                lit: table.event(&format!("e{i}")),
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            })
            .collect();
        WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
    }

    fn lits(report: &RunReport) -> BTreeSet<Literal> {
        report.occurrences.iter().map(|&(l, _, _)| l).collect()
    }

    #[test]
    fn parallel_run_matches_single_queue_logically() {
        let spec = pipeline_spec();
        let mut config = ExecConfig::seeded(11);
        let oracle = crate::run_workflow(&spec, config.clone());
        config.parallel = Some(ParallelConfig::new(1));
        let run = run_workflow_parallel(&spec, &config);
        assert_eq!(lits(&run.report), lits(&oracle), "occurrence sets agree");
        assert_eq!(run.report.unresolved, oracle.unresolved);
        assert_eq!(run.report.satisfied, oracle.satisfied);
        assert_eq!(run.report.termination, Termination::Quiescent);
        assert!(run.report.divergence.is_empty());
        assert!(run.report.all_satisfied(), "{:?}", run.report);
        assert_eq!(run.plan.class_count(), 4, "arrow pipeline: all classes singleton");
        assert!(run.stats.max_round_width >= 2, "some round ran shards in parallel");
    }

    #[test]
    fn parallel_run_is_worker_count_invariant() {
        let spec = pipeline_spec();
        let mut c1 = ExecConfig::seeded(3);
        c1.parallel = Some(ParallelConfig::new(1));
        let mut c3 = ExecConfig::seeded(3);
        c3.parallel = Some(ParallelConfig::new(3));
        let r1 = run_workflow_parallel(&spec, &c1);
        let r3 = run_workflow_parallel(&spec, &c3);
        assert_eq!(r1.report.occurrences, r3.report.occurrences, "bitwise: times and seqs too");
        assert_eq!(r1.report.duration, r3.report.duration);
        assert_eq!(r1.report.steps, r3.report.steps);
        assert_eq!(r1.stats.rounds, r3.stats.rounds);
    }

    #[test]
    fn run_workflow_dispatches_on_the_parallel_config() {
        let spec = pipeline_spec();
        let mut config = ExecConfig::seeded(5);
        config.parallel = Some(ParallelConfig::new(2));
        let report = crate::run_workflow(&spec, config);
        assert!(report.all_satisfied(), "{report:?}");
        assert!(
            report.metrics.counter("parallel.rounds", &[]).is_some(),
            "parallel metrics prove the dispatch: {:?}",
            report.metrics
        );
    }

    #[test]
    fn fleet_instances_match_their_isolated_baselines() {
        let spec = pipeline_spec();
        let arrivals: Vec<Arrival> =
            (0..6).map(|i| Arrival::new(i, 0, i * 5, 0xFEED ^ i)).collect();
        let mut config = ExecConfig::seeded(0);
        config.parallel = Some(ParallelConfig::new(2));
        let fleet = run_parallel_fleet(std::slice::from_ref(&spec), &arrivals, &config);
        assert_eq!(fleet.instances.len(), 6);
        assert!(fleet.all_satisfied(), "{:?}", fleet.metrics);
        for (a, o) in arrivals.iter().zip(&fleet.instances) {
            let mut solo_exec = config.clone();
            solo_exec.sim.seed = a.seed;
            solo_exec.parallel = None;
            let solo = crate::run_workflow(&spec, solo_exec);
            assert_eq!(lits(&o.report), lits(&solo), "instance {}", a.instance);
            assert_eq!(o.report.satisfied, solo.satisfied, "instance {}", a.instance);
            assert!(o.finished_at >= o.arrived_at);
        }
        assert_eq!(fleet.events, 24, "four events per instance");
    }

    #[test]
    fn fleet_results_are_worker_count_invariant_and_modeled() {
        let spec = pipeline_spec();
        let arrivals: Vec<Arrival> = (0..5).map(|i| Arrival::new(i, 0, i * 2, 77 + i)).collect();
        let mut c1 = ExecConfig::seeded(9);
        c1.parallel = Some(ParallelConfig { workers: 1, model_workers: vec![1, 2, 4, 8] });
        let mut c4 = ExecConfig::seeded(9);
        c4.parallel = Some(ParallelConfig::new(4));
        let f1 = run_parallel_fleet(std::slice::from_ref(&spec), &arrivals, &c1);
        let f4 = run_parallel_fleet(std::slice::from_ref(&spec), &arrivals, &c4);
        assert_eq!(f1.events, f4.events);
        for (a, b) in f1.instances.iter().zip(&f4.instances) {
            assert_eq!(a.report.occurrences, b.report.occurrences, "bitwise invariance");
        }
        assert_eq!(f1.stats.modeled_ns.len(), 4);
        let m1 = f1.events_per_sec_modeled(1).unwrap();
        let m8 = f1.events_per_sec_modeled(8).unwrap();
        assert!(m8 >= m1, "modeled throughput cannot shrink with more workers");
        assert!(f1.events_per_sec_modeled(3).is_none());
    }

    #[test]
    fn think_overrides_shift_fleet_injections() {
        let spec = pipeline_spec();
        let e0 = spec.free_events[0].lit;
        let mut a = Arrival::new(0, 0, 0, 4);
        a.think = vec![(e0, 40)];
        let mut config = ExecConfig::seeded(1);
        config.parallel = Some(ParallelConfig::new(1));
        let fleet =
            run_parallel_fleet(std::slice::from_ref(&spec), std::slice::from_ref(&a), &config);
        let report = &fleet.instances[0].report;
        assert!(report.all_satisfied(), "{report:?}");
        let t0 = report.occurrences.iter().find(|&&(l, _, _)| l == e0).unwrap().1;
        assert!(t0 >= 40, "e0 waits for the think override: occurred at {t0}");
    }
}
