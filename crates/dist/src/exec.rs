//! The distributed executor: compiles a workflow into per-event guards,
//! instantiates one actor per symbol and one node per task agent on a
//! simulated network, runs to quiescence, and reports the realized trace
//! together with satisfaction verdicts for every dependency.
//!
//! This is the end-to-end pipeline the paper describes: declarative
//! specification → guard synthesis (Section 4.2) → localized, distributed
//! evaluation (Section 4.3) — with **no centralized scheduler** in the
//! running system.

use crate::actor::{ActorStats, DepTracker, Routing, SymbolActor};
use crate::agent_node::{AgentNode, Script};
use crate::journal::{JournalKind, NodeStore};
use crate::msg::{InstanceId, Msg};
use crate::reliable::{Reliable, ReliableConfig};
use agent::{EventAttrs, TaskAgent};
use event_algebra::{
    normalize, satisfies, DependencyMachine, Expr, Literal, ShardPlan, SymbolId, SymbolTable, Trace,
};
use guard::{CompiledWorkflow, GuardScope};
use monitor::{MonitorConfig, WorkflowMonitor};
use obs::{
    EventSink, MetricsRegistry, MetricsSnapshot, NodeObs, Obs, RecordConfig, Recording, SpanKind,
};
use sim::{
    Ctx, FaultPlan, FaultStats, Network, NodeId, Process, SimConfig, SiteId, Termination, Time,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use temporal::Guard;

/// How sequence atoms in guards are handled at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardMode {
    /// Keep `◇(sequence)` atoms and reduce them by residuation — fully
    /// faithful to Definition 2.
    Faithful,
    /// Apply the paper's "small insight": replace sequences by
    /// conjunctions of eventualities; the other events' guards enforce the
    /// order. Enables promise-based consensus through sequences.
    #[default]
    Weakened,
}

/// How each actor tracks its dependencies' residuals at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DepRuntime {
    /// Step precompiled [`DependencyMachine`]s: per-fact work is one
    /// transition-table lookup and the triggering/acceptance queries are
    /// compile-time reachability tables.
    #[default]
    Compiled,
    /// Residuate the dependency expression tree on every fact — the
    /// symbolic reference oracle, selectable so the conformance harness
    /// can audit the compiled path against it.
    Symbolic,
}

/// A task agent placed on a site with a script.
#[derive(Debug, Clone)]
pub struct AgentSpec {
    /// The site the agent (and its events' actors) live on.
    pub site: SiteId,
    /// The task skeleton.
    pub agent: TaskAgent,
    /// The driver script.
    pub script: Script,
}

/// An event without an agent (used by benches and algebra-level tests):
/// the executor injects an `Attempt`/`Inform` for it directly.
#[derive(Debug, Clone, Copy)]
pub struct FreeEventSpec {
    /// Site of the event's actor.
    pub site: SiteId,
    /// The event literal.
    pub lit: Literal,
    /// Its attributes.
    pub attrs: EventAttrs,
    /// Attempt the event this long after start (`None`: never attempted).
    pub attempt_after: Option<Time>,
}

/// Everything needed to run one workflow.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    /// Names of events.
    pub table: SymbolTable,
    /// The intertask dependencies.
    pub dependencies: Vec<Expr>,
    /// Task agents.
    pub agents: Vec<AgentSpec>,
    /// Agent-less events.
    pub free_events: Vec<FreeEventSpec>,
}

/// Executor configuration. `Clone` (no longer `Copy`): the optional
/// shard plan is shared by reference.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Network parameters.
    pub sim: SimConfig,
    /// Sequence-atom handling.
    pub guard_mode: GuardMode,
    /// Upper bound on message deliveries (safety valve).
    pub max_steps: u64,
    /// Lazy re-evaluation ablation (experiment C3): actors defer parked
    /// re-evaluation to periodic ticks of this period, broadcast for the
    /// given number of rounds. `None` = the paper's eager scheduler.
    pub lazy: Option<(Time, u32)>,
    /// Record a structured journal of every scheduling decision.
    pub journal: bool,
    /// Protocol hardening for lossy networks: wrap cross-node messages in
    /// the at-least-once transport ([`Reliable`]) and arm promise-round
    /// timeouts on the actors. `None` (the default) sends raw messages —
    /// correct on the fault-free simulator and bit-identical to the
    /// behavior before the fault layer existed.
    pub reliable: Option<ReliableConfig>,
    /// Dependency-residual tracking: precompiled machines (the default)
    /// or symbolic tree residuation (the reference oracle).
    pub dep_runtime: DepRuntime,
    /// Attach a flight recorder: every guard evaluation, residual step,
    /// message, promise-round phase, WAL append/replay and fault
    /// injection becomes a causal trace span, returned on
    /// [`RunReport::recording`]. `None` (the default) records nothing and
    /// adds no work to the scheduling hot path. Ignored by the threaded
    /// executor, whose interleavings are not deterministic.
    pub record: Option<RecordConfig>,
    /// Arm the online runtime monitors: per-dependency verdict machines,
    /// the guard-faithfulness check, the `□`-view divergence watch and the
    /// stall watchdog, reporting on [`RunReport::monitor`] /
    /// [`RunReport::alerts`]. By default the monitor is *fused* into the
    /// scheduler — actors and the network step it directly at each
    /// transition, so arming it costs no trace-event construction (see
    /// [`ExecConfig::monitor_oracle`]). `None` (the default) attaches
    /// nothing and adds no work to the hot path. Like `record`, ignored
    /// by the threaded executor.
    pub monitor: Option<MonitorConfig>,
    /// Run the armed monitor in its legacy *sink-driven* mode instead of
    /// fused: it subscribes to the trace-event stream like any recorder
    /// sink and reconstructs scheduler transitions from spans. Kept as
    /// the cross-validation oracle — verdicts and violation alerts are
    /// identical in both modes (the monitor-equivalence audit holds them
    /// to it); only stall-alert *timestamps* may differ under crash
    /// plans, because crash-dropped deliveries record a span (a sink
    /// sweep point) but run no handler (no fused tick). Ignored when
    /// [`ExecConfig::monitor`] is `None`.
    pub monitor_oracle: bool,
    /// Pin actor placement from a certified [`ShardPlan`] (the
    /// interference analyzer's artifact): every member of a colocation
    /// class is placed at the same site — the class's declared site when
    /// one exists, otherwise the spec placement of its smallest member.
    /// The armed monitors also learn the class boundaries, so
    /// view-divergence alerts distinguish intra- from cross-shard
    /// disagreements. `None` (the default) leaves spec placement
    /// untouched. This is the placement interface the work-stealing
    /// parallel runtime (ROADMAP item 2) will consume.
    pub shard_plan: Option<Arc<ShardPlan>>,
    /// Run on the work-stealing parallel executor
    /// ([`crate::parallel::run_workflow_parallel`]) instead of the
    /// single-queue simulator: nodes are sharded by `shard_plan`
    /// colocation classes (or the Lemma 5 coupling fallback) and batches
    /// execute on this many worker threads. Fault-free fast path only:
    /// [`run_workflow`] dispatches on it, [`run_workflow_with_faults`]
    /// ignores it, and journals / recorders are forced off (they assume
    /// the single-queue delivery order). Armed monitors run by post-run
    /// sequence replay (see [`crate::parallel`]).
    pub parallel: Option<sim::ParallelConfig>,
}

impl ExecConfig {
    /// Default config with a given seed.
    pub fn seeded(seed: u64) -> ExecConfig {
        ExecConfig {
            sim: SimConfig { seed, ..SimConfig::default() },
            guard_mode: GuardMode::default(),
            max_steps: 1_000_000,
            lazy: None,
            journal: false,
            reliable: None,
            dep_runtime: DepRuntime::default(),
            record: None,
            monitor: None,
            monitor_oracle: false,
            shard_plan: None,
            parallel: None,
        }
    }
}

/// The literals whose occurrences are guard-gated: controllable events,
/// which wait for their guard before occurring. Immediate events
/// (`abort`-style informs) and forced complements occur without
/// consulting a guard, so the guard-faithfulness monitor and the
/// conformance auditor exempt them (their safety is judged by dependency
/// satisfaction instead).
pub fn guard_gated(spec: &WorkflowSpec) -> BTreeSet<Literal> {
    let mut gated = BTreeSet::new();
    for a in &spec.agents {
        for ev in &a.agent.events {
            if ev.attrs.controllable {
                gated.insert(ev.literal);
            }
        }
    }
    for f in &spec.free_events {
        if f.attrs.controllable {
            gated.insert(f.lit);
        }
    }
    gated
}

/// One network node: an event actor, an agent, or the lazy-mode ticker.
// Actor state dwarfs the other variants, but nodes are built once into a
// Vec and only ever borrowed after that — boxing would tax every message
// dispatch to save memory that is never moved.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum Node {
    /// Per-symbol event actor.
    Actor(SymbolActor),
    /// Task-agent driver.
    Agent(AgentNode),
    /// Broadcasts `Tick` to all actors every period, for a bounded number
    /// of rounds (lazy ablation).
    Ticker {
        /// Actor nodes to tick.
        actors: Vec<NodeId>,
        /// Tick period in virtual time. The self-message latency is 1, so
        /// the ticker re-sends `period/1` Kicks... (period is modeled by
        /// chained self-sends; see `on_message`).
        period: Time,
        /// Remaining rounds.
        rounds: u32,
        /// Countdown of self-hops until the next broadcast.
        countdown: Time,
    },
}

impl Process<Msg> for Node {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Actor(a) => a.handle(ctx, from, msg),
            Node::Agent(a) => a.handle(ctx, msg),
            Node::Ticker { actors, period, rounds, countdown } => {
                // Self-messages have latency ≥ 1 tick; chain them to
                // approximate the period, then broadcast.
                if *rounds == 0 {
                    return;
                }
                if *countdown > 1 {
                    *countdown -= 1;
                } else {
                    for &a in actors.iter() {
                        ctx.send(a, Msg::Tick);
                    }
                    *rounds -= 1;
                    *countdown = *period;
                }
                if *rounds > 0 {
                    ctx.send(ctx.self_id, Msg::Kick);
                }
            }
        }
    }
}

/// The outcome of one distributed run.
#[derive(Debug)]
pub struct RunReport {
    /// Events that occurred, in occurrence order.
    pub trace: Trace,
    /// Occurrence details: literal, virtual time, global sequence.
    pub occurrences: Vec<(Literal, Time, u64)>,
    /// Symbols never resolved by quiescence.
    pub unresolved: Vec<SymbolId>,
    /// The trace extended with complements of unresolved symbols — the
    /// maximal trace against which dependencies are judged.
    pub maximal_trace: Trace,
    /// Per-dependency satisfaction on the maximal trace.
    pub satisfied: Vec<bool>,
    /// Virtual time at quiescence.
    pub duration: Time,
    /// Deliveries performed.
    pub steps: u64,
    /// Network statistics.
    pub net: sim::NetStats,
    /// Per-symbol actor statistics.
    pub actor_stats: BTreeMap<SymbolId, ActorStats>,
    /// Events still parked (attempted, undecided) at quiescence.
    pub parked: Vec<Literal>,
    /// Promises granted but unfulfilled at quiescence.
    pub broken_promises: Vec<Literal>,
    /// The execution journal (empty unless `ExecConfig::journal`).
    pub journal: Vec<crate::journal::JournalEntry>,
    /// Whether the run actually converged or merely ran out of budget —
    /// a budget-exhausted report is not evidence of anything.
    pub termination: Termination,
    /// What the fault layer did, when a plan was installed.
    pub fault_stats: Option<FaultStats>,
    /// `□`-divergence detected across actors at quiescence: occurrence
    /// sequence numbers that two actors associate with *different*
    /// literals, as `(seq, first_seen, conflicting)`. Always empty when
    /// the protocol keeps its consistent-temporal-order promise
    /// (Section 6); the conformance harness asserts exactly that.
    pub divergence: Vec<(u64, Literal, Literal)>,
    /// Unified metrics snapshot: network, fault, transport, scheduler and
    /// per-dependency measurements behind one key/label API (subsumes
    /// [`RunReport::net`] and [`RunReport::fault_stats`], which stay for
    /// compatibility). Empty on the threaded executor.
    pub metrics: MetricsSnapshot,
    /// The flight recording, when [`ExecConfig::record`] was set: the
    /// full causal span DAG plus the metrics snapshot, ready for
    /// `wftrace` or JSON export.
    pub recording: Option<Recording>,
    /// Alerts raised by the online monitors, when
    /// [`ExecConfig::monitor`] was set (empty otherwise).
    pub alerts: Vec<monitor::Alert>,
    /// The full monitor report (final per-dependency verdicts, alert log,
    /// check counters), when [`ExecConfig::monitor`] was set.
    pub monitor: Option<monitor::MonitorReport>,
}

impl RunReport {
    /// `true` if every dependency is satisfied on the maximal trace.
    pub fn all_satisfied(&self) -> bool {
        self.satisfied.iter().all(|&s| s)
    }
}

/// The assembled network, ready to run on either executor.
pub struct BuiltWorkflow {
    /// `(site, node)` pairs; agents first, then actors.
    pub nodes: Vec<(SiteId, Node)>,
    /// Shared routing tables.
    pub routing: Arc<Routing>,
    /// Seed messages: `(from, to, msg, extra delay)`. The delay honors
    /// [`FreeEventSpec::attempt_after`] (minus the 1-tick injection
    /// latency every seed message already pays); driver kicks carry 0.
    pub injections: Vec<(NodeId, NodeId, Msg, Time)>,
    /// All symbols, in actor order.
    pub symbols: Vec<SymbolId>,
    /// The shared journal, when enabled.
    pub journal: Option<crate::journal::Journal>,
    /// The compiled faithful guards and dependency machines. Shared with
    /// the online monitors so arming them never recompiles the workflow
    /// — at small-spec scale the compile costs a sizable fraction of a
    /// whole run, and fleets build thousands of monitors.
    pub guards: Arc<CompiledWorkflow>,
}

/// Compile guards and assemble the nodes for `spec`.
pub fn build_workflow(spec: &WorkflowSpec, config: ExecConfig) -> BuiltWorkflow {
    let compiled = Arc::new(CompiledWorkflow::compile(&spec.dependencies, GuardScope::Mentioning));
    // In compiled mode every actor tracking dependency `ix` shares (an Arc
    // of) the same precompiled machine; only the u32 state is per-actor.
    let machines: Vec<Arc<DependencyMachine>> = match config.dep_runtime {
        DepRuntime::Compiled => compiled.machines.iter().cloned().map(Arc::new).collect(),
        DepRuntime::Symbolic => Vec::new(),
    };

    // ----- gather all symbols and their attributes/sites -----
    let mut attrs_of: BTreeMap<Literal, EventAttrs> = BTreeMap::new();
    let mut site_of_sym: BTreeMap<SymbolId, SiteId> = BTreeMap::new();
    let mut symbols: BTreeSet<SymbolId> = compiled.symbols.clone();
    for a in &spec.agents {
        for ev in &a.agent.events {
            symbols.insert(ev.literal.symbol());
            attrs_of.insert(ev.literal, ev.attrs);
            // Complements occur by rejection/unreachability, never by
            // attempt: immediate.
            attrs_of.insert(ev.literal.complement(), EventAttrs::immediate());
            site_of_sym.insert(ev.literal.symbol(), a.site);
        }
    }
    for f in &spec.free_events {
        symbols.insert(f.lit.symbol());
        attrs_of.insert(f.lit, f.attrs);
        attrs_of.entry(f.lit.complement()).or_insert_with(EventAttrs::immediate);
        site_of_sym.insert(f.lit.symbol(), f.site);
    }

    // ----- shard-plan placement pinning -----
    if let Some(plan) = &config.shard_plan {
        // Colocation classes share a site: a declared class site wins,
        // otherwise the smallest spec placement among members anchors the
        // class (so singleton classes keep their spec site).
        for class in &plan.classes {
            let site = class
                .site
                .map(SiteId)
                .or_else(|| class.events.iter().filter_map(|s| site_of_sym.get(s)).min().copied())
                .unwrap_or(SiteId(0));
            for &s in &class.events {
                site_of_sym.insert(s, site);
            }
        }
    }

    // ----- assign node ids: agents first, then actors -----
    let mut routing = Routing::default();
    let agent_count = spec.agents.len();
    let symbol_list: Vec<SymbolId> = symbols.iter().copied().collect();
    for (ix, &s) in symbol_list.iter().enumerate() {
        routing.actor_of.insert(s, NodeId((agent_count + ix) as u32));
    }
    for (aix, a) in spec.agents.iter().enumerate() {
        for ev in &a.agent.events {
            routing.agent_of.insert(ev.literal.symbol(), NodeId(aix as u32));
        }
    }

    // ----- interest/subscription map -----
    // Actor t is interested in symbol s if any of t's guards mention s or
    // a dependency mentioning t also mentions s (residual tracking).
    let mut interest: BTreeMap<SymbolId, BTreeSet<SymbolId>> = BTreeMap::new();
    for &t in &symbol_list {
        let mut set = BTreeSet::new();
        for lit in [Literal::pos(t), Literal::neg(t)] {
            set.extend(compiled.guard(lit).symbols());
        }
        for d in &spec.dependencies {
            if d.mentions(t) {
                set.extend(d.symbols());
            }
        }
        set.remove(&t);
        interest.insert(t, set);
    }
    for &s in &symbol_list {
        let subs: Vec<NodeId> = symbol_list
            .iter()
            .filter(|&&t| t != s && interest[&t].contains(&s))
            .map(|t| routing.actor_of[t])
            .collect();
        routing.subscribers_of.insert(s, subs);
    }
    let routing = Arc::new(routing);
    let lazy = config.lazy.is_some();
    let journal = config.journal.then(crate::journal::Journal::new);

    // ----- instantiate nodes -----
    let mut nodes: Vec<(SiteId, Node)> = Vec::new();
    for a in &spec.agents {
        nodes.push((
            a.site,
            Node::Agent(AgentNode::new(a.agent.clone(), &a.script, Arc::clone(&routing))),
        ));
    }
    let adapt = |g: Guard| match config.guard_mode {
        GuardMode::Faithful => g,
        GuardMode::Weakened => g.weaken_sequences(),
    };
    for &s in &symbol_list {
        let pos = Literal::pos(s);
        let neg = Literal::neg(s);
        let deps: Vec<(usize, DepTracker)> = spec
            .dependencies
            .iter()
            .enumerate()
            .filter(|(_, d)| d.mentions(s))
            .map(|(ix, d)| {
                let tracker = match config.dep_runtime {
                    DepRuntime::Compiled => DepTracker::compiled(Arc::clone(&machines[ix])),
                    DepRuntime::Symbolic => DepTracker::symbolic(normalize(d)),
                };
                (ix, tracker)
            })
            .collect();
        let mut actor = SymbolActor::new(
            s,
            adapt(compiled.guard(pos)),
            adapt(compiled.guard(neg)),
            attrs_of.get(&pos).copied().unwrap_or_else(EventAttrs::controllable),
            attrs_of.get(&neg).copied().unwrap_or_else(EventAttrs::immediate),
            deps,
            Arc::clone(&routing),
        );
        actor.lazy = lazy;
        actor.journal = journal.clone();
        actor.promise_timeout = config.reliable.map(|r| r.promise_timeout);
        let site = site_of_sym.get(&s).copied().unwrap_or(SiteId(0));
        nodes.push((site, Node::Actor(actor)));
    }
    if let Some((period, rounds)) = config.lazy {
        let actors: Vec<NodeId> = routing.actor_of.values().copied().collect();
        nodes.push((SiteId(0), Node::Ticker { actors, period, rounds, countdown: period }));
    }

    // ----- seed messages -----
    let mut injections = Vec::new();
    for aix in 0..agent_count {
        let id = NodeId(aix as u32);
        injections.push((id, id, Msg::Kick, 0));
    }
    if config.lazy.is_some() {
        let ticker = NodeId((nodes.len() - 1) as u32);
        injections.push((ticker, ticker, Msg::Kick, 0));
    }
    for f in &spec.free_events {
        if let Some(after) = f.attempt_after {
            let actor = routing.actor_of[&f.lit.symbol()];
            let msg = if f.attrs.controllable {
                Msg::Attempt { lit: f.lit }
            } else {
                Msg::Inform { lit: f.lit }
            };
            // Injection latency is at least 1 tick, so `attempt_after: 1`
            // (the common "at start" idiom) maps to no extra delay and
            // stays byte-identical to before delays were honored.
            injections.push((actor, actor, msg, after.saturating_sub(1)));
        }
    }
    BuiltWorkflow { nodes, routing, injections, symbols: symbol_list, journal, guards: compiled }
}

/// Assemble a report from finished actors. Reused per instance by the
/// multi-tenant engine's roll-ups ([`crate::tenant`]).
pub(crate) fn collect_report(
    spec: &WorkflowSpec,
    symbol_list: &[SymbolId],
    actor_for: impl Fn(SymbolId) -> usize,
    nodes: &[Node],
    duration: Time,
    outcome: sim::RunOutcome,
    net: sim::NetStats,
) -> RunReport {
    let sim::RunOutcome { steps, termination } = outcome;
    let mut occurrences: Vec<(Literal, Time, u64)> = Vec::new();
    let mut unresolved: Vec<SymbolId> = Vec::new();
    let mut actor_stats = BTreeMap::new();
    let mut parked = Vec::new();
    let mut broken_promises = Vec::new();
    let mut canon: BTreeMap<u64, Literal> = BTreeMap::new();
    let mut divergence: Vec<(u64, Literal, Literal)> = Vec::new();
    for &s in symbol_list {
        let Node::Actor(a) = &nodes[actor_for(s)] else { unreachable!() };
        actor_stats.insert(s, a.stats.clone());
        // Divergence audit: every actor's view of the global occurrence
        // order must agree wherever the views overlap.
        for (&seq, &lit) in a.facts() {
            match canon.get(&seq) {
                Some(&first) if first != lit => divergence.push((seq, first, lit)),
                Some(_) => {}
                None => {
                    canon.insert(seq, lit);
                }
            }
        }
        match a.occurred {
            Some(occ) => occurrences.push(occ),
            None => {
                unresolved.push(s);
                for (lit, st) in [(Literal::pos(s), &a.pos), (Literal::neg(s), &a.neg)] {
                    if st.attempted {
                        parked.push(lit);
                    }
                    if st.promised_out {
                        broken_promises.push(lit);
                    }
                }
            }
        }
    }
    occurrences.sort_by_key(|&(_, t, q)| (t, q));
    let trace = Trace::new(occurrences.iter().map(|&(l, _, _)| l))
        .expect("actors enforce single resolution per symbol");
    let mut maximal_events: Vec<Literal> = occurrences.iter().map(|&(l, _, _)| l).collect();
    maximal_events.extend(unresolved.iter().map(|&s| Literal::neg(s)));
    let maximal_trace = Trace::new(maximal_events).expect("complement extension cannot clash");
    let satisfied = spec.dependencies.iter().map(|d| satisfies(&maximal_trace, d)).collect();
    RunReport {
        trace,
        occurrences,
        unresolved,
        maximal_trace,
        satisfied,
        duration,
        steps,
        net,
        actor_stats,
        parked,
        broken_promises,
        journal: Vec::new(),
        termination,
        // Populated even on the fault-free path, so consumers can read
        // all-zero counters instead of special-casing `None`.
        fault_stats: Some(FaultStats::default()),
        divergence,
        metrics: MetricsSnapshot::default(),
        recording: None,
        alerts: Vec::new(),
        monitor: None,
    }
}

/// A network node wrapped in the fault-tolerance machinery: an optional
/// at-least-once transport ([`Reliable`]) for every cross-node message the
/// wrapped role sends, and an optional write-ahead log ([`NodeStore`])
/// from which the role is rebuilt after a crash.
///
/// With both disabled it is a transparent passthrough — the role handles
/// messages on the real network context, with zero behavioral difference
/// from running the role directly.
pub struct NetNode {
    /// The wrapped protocol role.
    pub role: Node,
    pub(crate) reliable: Option<Reliable>,
    /// Durable storage shared across the run (possibly across a whole
    /// tenant fleet), plus this node's instance and id keying its slice.
    store: Option<(NodeStore, InstanceId, u32)>,
    /// The node as originally built (journal and recorder detached):
    /// volatile state is reset to this on restart before the log replays
    /// over it.
    pristine: Option<Box<Node>>,
    journal: Option<crate::journal::Journal>,
    /// Flight-recorder handle for this node: WAL appends/replays are
    /// recorded here, and the handle is re-attached to the role after a
    /// crash rebuild (replay itself runs with recording detached, so
    /// rebuilt decisions are not re-recorded).
    obs: NodeObs,
    /// Fused monitor handle: ticked at the start of every delivery and
    /// restart (the stall watchdog's sweep points — exactly where the
    /// sink-driven monitor swept on the `MsgDeliver`/`Restart` span,
    /// which the network records *before* invoking the handler). Like
    /// `obs`, re-attached to actor roles after a crash rebuild.
    mon: Option<Arc<WorkflowMonitor>>,
}

impl NetNode {
    /// Route one outgoing message: cross-node immediate sends go through
    /// the reliability layer (when enabled); self-sends are local timers
    /// and delayed sends are think-time — both stay raw.
    fn forward(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, msg: Msg, extra: Time) {
        match &mut self.reliable {
            Some(r) if to != ctx.self_id && extra == 0 => {
                let seq = r.send(ctx, to, msg);
                if let Some((store, instance, id)) = &self.store {
                    store.record_seq(*instance, *id, to, seq);
                }
            }
            Some(_) => {
                // Only self-addressed timers may stay raw: a *cross-node*
                // delayed send would silently skip the envelope and lose
                // its at-least-once protection. No role emits one today;
                // the assert keeps the invariant explicit.
                debug_assert!(
                    to == ctx.self_id,
                    "delayed cross-node send would bypass the at-least-once transport"
                );
                ctx.send_after(to, msg, extra);
            }
            None => ctx.send_after(to, msg, extra),
        }
    }
}

impl Process<Msg> for NetNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        if let Some(m) = &self.mon {
            m.tick(ctx.now());
        }
        let (payload, env_seq) = match &mut self.reliable {
            Some(r) => match r.on_message(ctx, from, msg) {
                Some(p) => p,
                None => return, // ack, retry timer, or suppressed duplicate
            },
            None => (msg, None),
        };
        // Write-ahead: log every message the role actually processes
        // (post-dedup), with the delivery context it is processed under,
        // so a restart can replay exactly this stream — same payloads,
        // same times, same global delivery sequence numbers.
        if let Some((store, instance, id)) = &self.store {
            store.append(
                *instance,
                *id,
                crate::journal::WalEntry {
                    from,
                    msg: payload.clone(),
                    at: ctx.now(),
                    delivery_seq: ctx.delivery_seq(),
                    env_seq,
                },
            );
            self.obs.rec(ctx.now(), SpanKind::WalAppend { seq: ctx.delivery_seq() });
        }
        if self.reliable.is_some() {
            let mut out: Vec<(NodeId, Msg, Time)> = Vec::new();
            {
                let mut inner = Ctx::manual(ctx.self_id, ctx.now(), ctx.delivery_seq(), &mut out);
                self.role.on_message(&mut inner, from, payload);
            }
            for (to, m, extra) in out {
                self.forward(ctx, to, m, extra);
            }
        } else {
            self.role.on_message(ctx, from, payload);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(m) = &self.mon {
            m.tick(ctx.now());
        }
        let Some(pristine) = &self.pristine else { return };
        self.role = (**pristine).clone();
        let log = match &self.store {
            Some((store, instance, id)) => store.log_of(*instance, *id),
            None => Vec::new(),
        };
        // Fresh transport state — but outgoing sequence counters continue
        // past every number ever used (or receivers' dedup sets would
        // silently discard the restarted node's new messages), and the
        // receive-side dedup sets are rebuilt from the logged envelopes
        // (or a peer retransmitting a pre-crash envelope would pass as a
        // first delivery and be processed — and logged — twice).
        if let Some(r) = &mut self.reliable {
            let mut fresh = Reliable::new(r.config());
            fresh.obs = r.obs.clone();
            // The instance stamp is part of the node's identity, not its
            // volatile state: a restarted tenant node must keep speaking
            // for its instance (or it would reject every peer envelope).
            fresh.instance = r.instance;
            if let Some((store, instance, id)) = &self.store {
                fresh.restore_seqs(store.seqs_of(*instance, *id));
            }
            fresh.restore_seen(log.iter().filter_map(|e| e.env_seq.map(|s| (e.from, s))));
            *r = fresh;
        }
        // Replay the write-ahead log to rebuild volatile protocol state.
        // Each entry is replayed under its *original* delivery context
        // (time and global sequence), so an occurrence decided during
        // replay is rebuilt with its pre-crash `(time, seq)` and the
        // resume step's re-announcement deduplicates at subscribers
        // instead of fabricating a fresh sequence number. Sends are
        // suppressed: everything the pre-crash node sent was either
        // delivered, or is covered by peers' retransmissions and the
        // resume step below. The journal stays detached during replay so
        // rebuilt decisions are not re-recorded.
        let replayed = log.len();
        {
            let mut discard: Vec<(NodeId, Msg, Time)> = Vec::new();
            for e in log {
                let mut inner = Ctx::manual(ctx.self_id, e.at, e.delivery_seq, &mut discard);
                self.role.on_message(&mut inner, e.from, e.msg);
            }
        }
        if let Node::Actor(a) = &mut self.role {
            a.journal = self.journal.clone();
            a.obs = self.obs.clone();
            a.mon = self.mon.clone();
        }
        self.obs.rec(ctx.now(), SpanKind::WalReplay { entries: replayed as u64 });
        if let Some(j) = &self.journal {
            j.record(ctx.now(), JournalKind::Restarted { node: ctx.self_id.0, replayed });
        }
        // Re-kick in-flight work; outputs go through the transport.
        let mut out: Vec<(NodeId, Msg, Time)> = Vec::new();
        {
            let mut inner = Ctx::manual(ctx.self_id, ctx.now(), ctx.delivery_seq(), &mut out);
            match &mut self.role {
                Node::Actor(a) => a.resume_after_restart(&mut inner),
                Node::Agent(a) => a.resume(&mut inner),
                Node::Ticker { .. } => inner.send(ctx.self_id, Msg::Kick),
            }
        }
        for (to, m, extra) in out {
            self.forward(ctx, to, m, extra);
        }
    }
}

/// Wrap built nodes in the fault-tolerance machinery ([`NetNode`]):
/// per-node at-least-once transport when `reliable` is set, write-ahead
/// logging (and the pristine copies restarts reset to) when `store` is
/// set. `instance` keys the store slice and stamps the transport; the
/// single-instance executors pass [`InstanceId::ROOT`], the tenant
/// engine passes each instance's id (actors' own instance fields are the
/// caller's responsibility — they are part of the role's cloned state).
pub(crate) fn wrap_nodes(
    nodes: Vec<(SiteId, Node)>,
    reliable: Option<ReliableConfig>,
    store: Option<NodeStore>,
    journal: Option<crate::journal::Journal>,
    obs: &Obs,
    mon: Option<Arc<WorkflowMonitor>>,
    instance: InstanceId,
) -> Vec<(SiteId, NetNode)> {
    nodes
        .into_iter()
        .enumerate()
        .map(|(ix, (site, mut role))| {
            let node_obs = NodeObs::new(obs.clone(), ix as u32, site.0);
            if let Node::Actor(a) = &mut role {
                a.obs = node_obs.clone();
                a.mon = mon.clone();
            }
            // Pristine copies replay with monitor (and recorder)
            // detached: WAL replay re-derives state the monitor already
            // observed before the crash, and must not re-step it.
            let pristine = store.is_some().then(|| {
                let mut p = role.clone();
                if let Node::Actor(a) = &mut p {
                    a.journal = None;
                    a.obs = NodeObs::off();
                    a.mon = None;
                }
                Box::new(p)
            });
            let mut r = reliable.map(Reliable::new);
            if let Some(r) = &mut r {
                r.obs = node_obs.clone();
                r.instance = instance;
            }
            let node = NetNode {
                role,
                reliable: r,
                store: store.clone().map(|s| (s, instance, ix as u32)),
                pristine,
                journal: journal.clone(),
                obs: node_obs,
                mon: mon.clone(),
            };
            (site, node)
        })
        .collect()
}

/// Compile and run a workflow on the deterministic simulated network —
/// or, when [`ExecConfig::parallel`] is set, on the work-stealing
/// parallel executor (whose results the tenth conformance audit holds to
/// the single-queue simulator's).
pub fn run_workflow(spec: &WorkflowSpec, config: ExecConfig) -> RunReport {
    if config.parallel.is_some() {
        return crate::parallel::run_workflow_parallel(spec, &config).report;
    }
    run_workflow_inner(spec, config, None)
}

/// Compile and run a workflow under a [`FaultPlan`]: link faults, site
/// partitions and crash–restarts from the plan are applied to the
/// network, a shared [`NodeStore`] write-ahead log backs crash recovery,
/// and (when `config.reliable` is set) every cross-node protocol message
/// rides the at-least-once transport.
pub fn run_workflow_with_faults(
    spec: &WorkflowSpec,
    config: ExecConfig,
    plan: FaultPlan,
) -> RunReport {
    run_workflow_inner(spec, config, Some(plan))
}

fn run_workflow_inner(
    spec: &WorkflowSpec,
    config: ExecConfig,
    plan: Option<FaultPlan>,
) -> RunReport {
    let built = build_workflow(spec, config.clone());
    // The online monitors run the faithful guards and machines the
    // builder compiled (shared, not recompiled — `GuardScope::Mentioning`
    // is the unweakened set, independent of whatever dep runtime the
    // actors use). In the default *fused* mode the scheduler steps them
    // directly; in oracle mode they subscribe to the same trace-event
    // stream the flight recorder consumes.
    let mon = config.monitor.map(|mc| {
        let m = WorkflowMonitor::from_compiled(
            &spec.table,
            Arc::clone(&built.guards),
            guard_gated(spec),
            mc,
        );
        // The view-divergence checker learns the shard boundaries, so a
        // disagreement across colocation classes is labeled as such.
        if let Some(plan) = &config.shard_plan {
            m.set_shard_plan(Arc::clone(plan));
        }
        Arc::new(m)
    });
    let sinks: Vec<Arc<dyn EventSink>> = if config.monitor_oracle {
        mon.iter().map(|m| Arc::clone(m) as Arc<dyn EventSink>).collect()
    } else {
        Vec::new()
    };
    let obs = Obs::with_sinks(config.record, sinks);
    let fused = if config.monitor_oracle { None } else { mon.clone() };
    let routing = Arc::clone(&built.routing);
    let journal = built.journal.clone();
    // Durable storage (and the pristine copies restarts reset to) are
    // only materialized when a fault plan could actually crash a node.
    let store = plan.is_some().then(NodeStore::new);
    let nodes = wrap_nodes(
        built.nodes,
        config.reliable,
        store,
        journal.clone(),
        &obs,
        fused,
        InstanceId::ROOT,
    );
    let mut net: Network<Msg, NetNode> = Network::new(config.sim, nodes);
    net.set_recorder(obs.clone(), Msg::kind_label);
    if let Some(plan) = plan {
        net.set_faults(plan);
    }
    for (from, to, msg, extra) in built.injections {
        net.inject_after(from, to, msg, extra);
    }
    let max_steps = if config.max_steps == 0 { 1_000_000 } else { config.max_steps };
    let outcome = net.run_to_quiescence(max_steps);
    let duration = net.now();
    let stats = net.stats().clone();
    let fault_stats = net.fault_stats().copied();
    let (mut retransmissions, mut dedup_dropped, mut gave_up) = (0u64, 0u64, 0u64);
    let all: Vec<Node> = net
        .into_nodes()
        .into_iter()
        .map(|n| {
            if let Some(r) = &n.reliable {
                retransmissions += r.retransmissions;
                dedup_dropped += r.duplicates_suppressed;
                gave_up += r.gave_up;
            }
            n.role
        })
        .collect();
    let mut report = collect_report(
        spec,
        &built.symbols,
        |s| routing.actor_of[&s].0 as usize,
        &all,
        duration,
        outcome,
        stats,
    );
    if let Some(fs) = fault_stats {
        report.fault_stats = Some(fs);
    }
    if let Some(j) = journal {
        report.journal = j.entries();
    }

    // ----- unified metrics -----
    let reg = MetricsRegistry::new();
    report.net.record_into(&reg);
    if let Some(fs) = &report.fault_stats {
        fs.record_into(&reg);
    }
    reg.add("transport.retransmissions", &[], retransmissions);
    reg.add("transport.dedup_dropped", &[], dedup_dropped);
    reg.add("transport.gave_up", &[], gave_up);
    reg.add("run.steps", &[], report.steps);
    reg.set_gauge("run.duration", &[], report.duration as i64);
    let mut sched = [0u64; 5];
    for (sym, st) in &report.actor_stats {
        let name = spec.table.name(*sym).unwrap_or("?");
        let labels: &[(&str, &str)] = &[("event", name)];
        reg.add("actor.attempts", labels, st.attempts);
        reg.add("actor.granted", labels, st.granted);
        reg.add("actor.rejected", labels, st.rejected);
        reg.add("actor.triggers", labels, st.triggers);
        sched[0] += st.promises_requested;
        sched[1] += st.promises_granted;
        sched[2] += st.promise_aborts;
        sched[3] += st.reductions;
        sched[4] += st.announces_out;
    }
    reg.add("sched.promises_requested", &[], sched[0]);
    reg.add("sched.promises_granted", &[], sched[1]);
    reg.add("sched.promise_aborts", &[], sched[2]);
    reg.add("sched.reductions", &[], sched[3]);
    reg.add("sched.announces", &[], sched[4]);
    for (i, &ok) in report.satisfied.iter().enumerate() {
        reg.set_gauge("dep.satisfied", &[("dep", &i.to_string())], i64::from(ok));
    }
    if let Some(plan) = &config.shard_plan {
        reg.set_gauge("shard.classes", &[], plan.class_count() as i64);
        reg.set_gauge("shard.pinned_classes", &[], plan.pinned_count() as i64);
        reg.set_gauge("shard.max_class_size", &[], plan.max_class_size() as i64);
        reg.set_gauge("shard.independent_pairs", &[], plan.independent.len() as i64);
    }
    if let Some(rec) = obs.recorder() {
        reg.add("obs.recorder.dropped_spans", &[], rec.dropped());
        reg.add("obs.recorder.sampled_out", &[], obs.sampled_out());
    }
    if let Some(m) = mon {
        let mrep = m.finish(report.duration);
        reg.add("monitor.facts", &[], mrep.facts);
        reg.add("monitor.guard_checks", &[], mrep.guard_checks);
        for alert in &mrep.alerts {
            reg.add("monitor.alerts", &[("kind", alert.kind.tag())], 1);
        }
        for (ix, v) in mrep.verdicts.iter().enumerate() {
            reg.add("monitor.verdicts", &[("dep", &ix.to_string()), ("verdict", v.label())], 1);
        }
        report.alerts = mrep.alerts.clone();
        report.monitor = Some(mrep);
    }
    let snapshot = reg.snapshot();
    report.recording = obs.recorder().map(|rec| Recording {
        workflow: String::new(),
        symbols: (0..spec.table.len())
            .map(|i| spec.table.name(SymbolId(i as u32)).unwrap_or("?").to_string())
            .collect(),
        dropped: rec.dropped(),
        sampled_out: obs.sampled_out(),
        events: rec.take_events(),
        metrics: snapshot.clone(),
    });
    report.metrics = snapshot;
    report
}

/// Compile and run a workflow on the threaded executor (crossbeam
/// channels, one OS thread per node). Nondeterministic: used by the
/// safety property tests.
pub fn run_workflow_threaded(spec: &WorkflowSpec, config: ExecConfig) -> RunReport {
    let built = build_workflow(spec, config.clone());
    let routing = Arc::clone(&built.routing);
    let max = if config.max_steps == 0 { 1_000_000 } else { config.max_steps };
    // No virtual clock on the threaded executor: injection delays degrade
    // to immediate sends, exactly like delayed sends inside the run.
    let injections = built.injections.into_iter().map(|(f, t, m, _)| (f, t, m)).collect();
    let (all, outcome, stats) = sim::run_threaded(built.nodes, injections, max);
    // The delivery count doubles as the virtual clock (every delivery is
    // one tick), so it is the closest thing to a duration the threaded
    // executor has.
    let duration = outcome.steps;
    collect_report(
        spec,
        &built.symbols,
        |s| routing.actor_of[&s].0 as usize,
        &all,
        duration,
        outcome,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::library::rda_transaction;
    use event_algebra::parse_expr;

    /// Example 11: D→ and its transpose — both events' guards are
    /// mutually `◇`; the promise consensus must let both occur.
    #[test]
    fn example11_mutual_promises() {
        let mut table = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut table).unwrap();
        let d2 = parse_expr("~f + e", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d1, d2],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let report = run_workflow(&spec, ExecConfig::seeded(7));
        assert!(report.all_satisfied(), "{report:?}");
        assert_eq!(report.trace.len(), 2, "both events occur: {report:?}");
        assert!(report.parked.is_empty());
        assert!(report.broken_promises.is_empty());
    }

    /// Example 10: with D<'s guards, f parks until ē occurs.
    #[test]
    fn example10_parking_until_complement() {
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(1),
                    lit: e.complement(),
                    attrs: EventAttrs::immediate(),
                    attempt_after: Some(50),
                },
            ],
        };
        let report = run_workflow(&spec, ExecConfig::seeded(3));
        assert!(report.all_satisfied(), "{report:?}");
        // Both resolved: ē then f.
        assert_eq!(report.trace.events(), &[e.complement(), f], "{report:?}");
        // f parked before ē arrived.
        let f_stats = &report.actor_stats[&f.symbol()];
        assert!(f_stats.first_parked_at.is_some());
    }

    /// D< with both events attempted: e must precede f in every run.
    #[test]
    fn d_precedes_orders_events() {
        for seed in 0..20 {
            let mut table = SymbolTable::new();
            let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
            let e = table.event("e");
            let f = table.event("f");
            let spec = WorkflowSpec {
                table,
                dependencies: vec![d],
                agents: vec![],
                free_events: vec![
                    FreeEventSpec {
                        site: SiteId(0),
                        lit: e,
                        attrs: EventAttrs::controllable(),
                        attempt_after: Some(1),
                    },
                    FreeEventSpec {
                        site: SiteId(1),
                        lit: f,
                        attrs: EventAttrs::controllable(),
                        attempt_after: Some(1),
                    },
                ],
            };
            let report = run_workflow(&spec, ExecConfig::seeded(seed));
            assert!(report.all_satisfied(), "seed {seed}: {report:?}");
        }
    }

    /// An RDA transaction whose agent aborts: the commit becomes
    /// unreachable and its complement is informed, satisfying `~commit`-
    /// style dependencies.
    #[test]
    fn abort_produces_commit_complement() {
        let mut table = SymbolTable::new();
        let t1 = rda_transaction("t1", &mut table);
        let commit = table.lookup("t1.commit").map(Literal::pos).unwrap();
        let spec = WorkflowSpec {
            table,
            dependencies: vec![],
            agents: vec![AgentSpec {
                site: SiteId(0),
                agent: t1,
                script: Script::of(&["start", "abort"]),
            }],
            free_events: vec![],
        };
        let report = run_workflow(&spec, ExecConfig::seeded(1));
        assert!(report.maximal_trace.contains(commit.complement()), "{report:?}");
        assert!(!report.unresolved.contains(&commit.symbol()), "informed, not implicit");
    }
}
