//! At-least-once transport for the scheduling protocol.
//!
//! The paper's protocol (Sections 4.3 and 6) assumes every `□e`
//! announcement and every `◇e` promise message eventually arrives. Over a
//! lossy network that assumption is earned, not free: this module wraps
//! each cross-node protocol message in a sequence-numbered envelope
//! ([`Msg::Seq`]), acks every received envelope, retransmits unacked
//! envelopes on a backoff timer, and deduplicates deliveries by
//! `(sender, seq)` so the receiver processes each payload exactly once.
//!
//! At-least-once delivery plus exactly-once processing restores the
//! idealized-channel premise of Theorem 2's safety argument: a guard
//! evaluated against deduplicated, per-link-ordered announcements sees
//! the same fact stream it would see on a perfect network, just later.

use crate::msg::{InstanceId, Msg};
use obs::{NodeObs, SpanKind};
use sim::{Ctx, NodeId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial retransmission timeout, in virtual ticks. Should exceed
    /// one round trip at the configured latency model.
    pub rto: Time,
    /// Multiplier applied to the timeout after every retransmission.
    pub backoff: u32,
    /// Give up on an envelope after this many transmissions (the
    /// protocol treats a peer as unreachable; a healed partition within
    /// the retry horizon is survived, a permanent one is not masked).
    pub max_attempts: u32,
    /// How long a `◇` promise request may stay unanswered before the
    /// round is aborted and retried ([`Msg::PromiseExpire`]).
    pub promise_timeout: Time,
}

impl Default for ReliableConfig {
    fn default() -> ReliableConfig {
        ReliableConfig { rto: 64, backoff: 2, max_attempts: 12, promise_timeout: 512 }
    }
}

/// Per-node reliability state: outgoing sequence counters, the
/// retransmission buffer, and the receive-side dedup sets.
#[derive(Debug, Default)]
pub struct Reliable {
    config: ReliableConfig,
    /// Next sequence number per receiver.
    next_seq: BTreeMap<NodeId, u64>,
    /// Unacked envelopes: `(receiver, seq) → (payload, attempts so far)`.
    unacked: BTreeMap<(NodeId, u64), (Msg, u32)>,
    /// Sequence numbers already delivered, per sender.
    seen: BTreeMap<NodeId, BTreeSet<u64>>,
    /// The workflow instance this node belongs to, stamped on every
    /// outgoing envelope and checked on every incoming one. Defaults to
    /// [`InstanceId::ROOT`] for single-instance runs.
    pub instance: InstanceId,
    /// Envelopes abandoned after `max_attempts` transmissions.
    pub gave_up: u64,
    /// Envelopes dropped because they carried a foreign [`InstanceId`]
    /// (never acked: a cross-wired sender must not believe it was heard).
    pub cross_instance_dropped: u64,
    /// Duplicate envelopes suppressed.
    pub duplicates_suppressed: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Flight-recorder handle (off by default): envelope sends,
    /// retransmissions, acks, dedup drops and give-ups become trace spans
    /// when a recorder is attached.
    pub obs: NodeObs,
}

impl Reliable {
    /// Fresh state with the given tuning.
    pub fn new(config: ReliableConfig) -> Reliable {
        Reliable { config, ..Reliable::default() }
    }

    /// The active tuning.
    pub fn config(&self) -> ReliableConfig {
        self.config
    }

    /// Number of envelopes awaiting ack.
    pub fn pending(&self) -> usize {
        self.unacked.len()
    }

    /// Send `msg` to `to` under an envelope, arming the retransmission
    /// timer. Used for every cross-node protocol message. Returns the
    /// sequence number used, so callers can persist it durably (see
    /// [`restore_seqs`](Reliable::restore_seqs)).
    pub fn send(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, msg: Msg) -> u64 {
        let seq = self.next_seq.entry(to).or_insert(0);
        *seq += 1;
        let seq = *seq;
        self.obs.rec(ctx.now(), SpanKind::EnvSend { to: to.0, seq });
        ctx.send(to, Msg::Seq { seq, instance: self.instance, inner: Box::new(msg.clone()) });
        self.unacked.insert((to, seq), (msg, 1));
        ctx.send_after(ctx.self_id, Msg::RetryTimer { to, seq }, self.config.rto);
        seq
    }

    /// Restore outgoing sequence counters from durable storage after a
    /// crash. A restarted sender that reused sequence numbers would have
    /// its fresh messages silently discarded by receivers' dedup sets, so
    /// counters must continue past every number ever used.
    pub fn restore_seqs(&mut self, seqs: BTreeMap<NodeId, u64>) {
        self.next_seq = seqs;
    }

    /// Restore the receive-side dedup sets from durable storage after a
    /// crash (the write-ahead log records each processed message's
    /// envelope). Without this, a peer retransmitting a pre-crash
    /// envelope after the restart would pass dedup as a first delivery
    /// and the payload would be processed — and logged — a second time.
    pub fn restore_seen(&mut self, envelopes: impl IntoIterator<Item = (NodeId, u64)>) {
        for (from, seq) in envelopes {
            self.seen.entry(from).or_default().insert(seq);
        }
    }

    /// Handle an incoming transport-level message. Returns:
    ///
    /// - `Some((payload, envelope_seq))` for a first-delivery envelope
    ///   (the caller processes the payload exactly once; the envelope
    ///   sequence — `None` for raw, unwrapped messages — is what durable
    ///   logs persist so [`restore_seen`](Reliable::restore_seen) can
    ///   rebuild dedup after a crash);
    /// - `None` for acks, retry timers and duplicate envelopes, which
    ///   are consumed entirely by the transport.
    pub fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        msg: Msg,
    ) -> Option<(Msg, Option<u64>)> {
        match msg {
            Msg::Seq { seq, instance, inner } => {
                // An envelope from a foreign instance is not ours to ack:
                // dropping it silently keeps instance state from leaking
                // and leaves the cross-wired sender visibly unheard.
                if instance != self.instance {
                    self.cross_instance_dropped += 1;
                    return None;
                }
                // Ack every copy: the sender may have missed earlier acks.
                ctx.send(from, Msg::Ack { seq });
                if self.seen.entry(from).or_default().insert(seq) {
                    Some((*inner, Some(seq)))
                } else {
                    self.duplicates_suppressed += 1;
                    self.obs.rec(ctx.now(), SpanKind::EnvDedupDrop { from: from.0, seq });
                    None
                }
            }
            Msg::Ack { seq } => {
                self.unacked.remove(&(from, seq));
                self.obs.rec(ctx.now(), SpanKind::EnvAck { peer: from.0, seq });
                None
            }
            Msg::RetryTimer { to, seq } => {
                self.retransmit(ctx, to, seq);
                None
            }
            other => Some((other, None)),
        }
    }

    fn retransmit(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, seq: u64) {
        let Some((msg, attempts)) = self.unacked.get_mut(&(to, seq)) else {
            return; // acked in the meantime
        };
        if *attempts >= self.config.max_attempts {
            self.unacked.remove(&(to, seq));
            self.gave_up += 1;
            self.obs.rec(ctx.now(), SpanKind::EnvGiveUp { to: to.0, seq });
            return;
        }
        *attempts += 1;
        let attempt = *attempts;
        let exponent = (*attempts - 1).min(16);
        let rto = self.config.rto.saturating_mul(u64::from(self.config.backoff).pow(exponent));
        self.obs.rec(ctx.now(), SpanKind::EnvRetransmit { to: to.0, seq, attempt });
        ctx.send(to, Msg::Seq { seq, instance: self.instance, inner: Box::new(msg.clone()) });
        self.retransmissions += 1;
        ctx.send_after(ctx.self_id, Msg::RetryTimer { to, seq }, rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Literal, SymbolId};
    use sim::Time;

    fn ctx_parts() -> Vec<(NodeId, Msg, Time)> {
        Vec::new()
    }

    fn announce(sym: u32) -> Msg {
        Msg::Announce {
            lit: Literal::pos(SymbolId(sym)),
            at: 1,
            seq: 1,
            instance: InstanceId::ROOT,
        }
    }

    fn env(seq: u64, inner: Msg) -> Msg {
        Msg::Seq { seq, instance: InstanceId::ROOT, inner: Box::new(inner) }
    }

    #[test]
    fn send_wraps_and_arms_timer() {
        let mut r = Reliable::new(ReliableConfig::default());
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(0), 0, 0, &mut out);
        r.send(&mut ctx, NodeId(1), announce(3));
        assert_eq!(r.pending(), 1);
        assert_eq!(out.len(), 2, "envelope + timer");
        assert!(matches!(&out[0], (NodeId(1), Msg::Seq { seq: 1, .. }, 0)));
        assert!(matches!(&out[1], (NodeId(0), Msg::RetryTimer { to: NodeId(1), seq: 1 }, _)));
    }

    #[test]
    fn first_delivery_passes_then_duplicates_suppressed() {
        let mut r = Reliable::new(ReliableConfig::default());
        let env = env(5, announce(2));
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(1), 0, 0, &mut out);
        let first = r.on_message(&mut ctx, NodeId(0), env.clone());
        assert_eq!(first, Some((announce(2), Some(5))));
        let second = r.on_message(&mut ctx, NodeId(0), env);
        assert_eq!(second, None);
        assert_eq!(r.duplicates_suppressed, 1);
        // Both copies were acked.
        let acks = out
            .iter()
            .filter(|(to, m, _)| *to == NodeId(0) && matches!(m, Msg::Ack { seq: 5 }))
            .count();
        assert_eq!(acks, 2);
    }

    #[test]
    fn ack_cancels_retransmission() {
        let mut r = Reliable::new(ReliableConfig::default());
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(0), 0, 0, &mut out);
        r.send(&mut ctx, NodeId(1), announce(1));
        assert_eq!(r.on_message(&mut ctx, NodeId(1), Msg::Ack { seq: 1 }), None);
        assert_eq!(r.pending(), 0);
        // The timer still fires, but finds nothing to resend.
        out.clear();
        let mut ctx = Ctx::manual(NodeId(0), 100, 0, &mut out);
        assert_eq!(
            r.on_message(&mut ctx, NodeId(0), Msg::RetryTimer { to: NodeId(1), seq: 1 }),
            None
        );
        assert!(out.is_empty());
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn unacked_envelope_is_retransmitted_with_backoff() {
        let cfg = ReliableConfig { rto: 10, backoff: 3, max_attempts: 3, promise_timeout: 99 };
        let mut r = Reliable::new(cfg);
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(0), 0, 0, &mut out);
        r.send(&mut ctx, NodeId(1), announce(1));
        out.clear();
        let mut ctx = Ctx::manual(NodeId(0), 10, 0, &mut out);
        r.on_message(&mut ctx, NodeId(0), Msg::RetryTimer { to: NodeId(1), seq: 1 });
        assert_eq!(r.retransmissions, 1);
        assert!(matches!(&out[0], (NodeId(1), Msg::Seq { seq: 1, .. }, 0)));
        // Backoff: the re-armed timer waits rto * backoff.
        assert!(matches!(&out[1], (NodeId(0), Msg::RetryTimer { .. }, 30)));
        // Third timer firing hits max_attempts and gives up.
        out.clear();
        let mut ctx = Ctx::manual(NodeId(0), 40, 0, &mut out);
        r.on_message(&mut ctx, NodeId(0), Msg::RetryTimer { to: NodeId(1), seq: 1 });
        assert_eq!(r.retransmissions, 2);
        out.clear();
        let mut ctx = Ctx::manual(NodeId(0), 130, 0, &mut out);
        r.on_message(&mut ctx, NodeId(0), Msg::RetryTimer { to: NodeId(1), seq: 1 });
        assert!(out.is_empty(), "gave up after max_attempts");
        assert_eq!(r.gave_up, 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn foreign_instance_envelope_dropped_without_ack() {
        let mut r = Reliable::new(ReliableConfig::default());
        r.instance = InstanceId(7);
        let mut out = ctx_parts();
        {
            let mut ctx = Ctx::manual(NodeId(1), 0, 0, &mut out);
            let foreign =
                Msg::Seq { seq: 1, instance: InstanceId(8), inner: Box::new(announce(2)) };
            assert_eq!(r.on_message(&mut ctx, NodeId(0), foreign), None);
            assert_eq!(r.cross_instance_dropped, 1);
            let ours = Msg::Seq { seq: 1, instance: InstanceId(7), inner: Box::new(announce(2)) };
            assert!(r.on_message(&mut ctx, NodeId(0), ours).is_some());
        }
        // No ack for the foreign envelope: the cross-wired sender must
        // not believe it was heard. (The matching envelope was acked.)
        let acks = out.iter().filter(|(_, m, _)| matches!(m, Msg::Ack { .. })).count();
        assert_eq!(acks, 1);
    }

    #[test]
    fn non_transport_messages_pass_through() {
        let mut r = Reliable::new(ReliableConfig::default());
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(1), 0, 0, &mut out);
        assert_eq!(r.on_message(&mut ctx, NodeId(0), Msg::Kick), Some((Msg::Kick, None)));
        assert!(out.is_empty());
    }

    #[test]
    fn restored_seen_set_suppresses_precrash_retransmissions() {
        // Receiver processes envelope 4, crashes, and is rebuilt with the
        // dedup set restored from its log: the peer's retransmission of
        // envelope 4 must be acked but not re-delivered, while a genuinely
        // new envelope still passes.
        let mut r = Reliable::new(ReliableConfig::default());
        r.restore_seen([(NodeId(0), 4)]);
        let mut out = ctx_parts();
        {
            let mut ctx = Ctx::manual(NodeId(1), 200, 0, &mut out);
            let dup = env(4, announce(2));
            assert_eq!(r.on_message(&mut ctx, NodeId(0), dup), None, "pre-crash dup suppressed");
            assert_eq!(r.duplicates_suppressed, 1);
            let fresh = env(5, announce(3));
            assert_eq!(r.on_message(&mut ctx, NodeId(0), fresh), Some((announce(3), Some(5))));
        }
        assert!(
            out.iter().any(|(to, m, _)| *to == NodeId(0) && matches!(m, Msg::Ack { seq: 4 })),
            "duplicate still acked so the sender stops retransmitting"
        );
    }

    #[test]
    fn restored_seq_counters_continue_past_old_numbers() {
        let mut r = Reliable::new(ReliableConfig::default());
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(0), 0, 0, &mut out);
        assert_eq!(r.send(&mut ctx, NodeId(1), announce(1)), 1);
        assert_eq!(r.send(&mut ctx, NodeId(1), announce(2)), 2);
        // Crash: volatile state lost, counters restored from storage.
        let mut r2 = Reliable::new(ReliableConfig::default());
        r2.restore_seqs(BTreeMap::from([(NodeId(1), 2)]));
        out.clear();
        let mut ctx = Ctx::manual(NodeId(0), 50, 0, &mut out);
        assert_eq!(r2.send(&mut ctx, NodeId(1), announce(3)), 3, "no reuse");
    }

    #[test]
    fn per_receiver_sequence_spaces_are_independent() {
        let mut r = Reliable::new(ReliableConfig::default());
        let mut out = ctx_parts();
        let mut ctx = Ctx::manual(NodeId(0), 0, 0, &mut out);
        r.send(&mut ctx, NodeId(1), announce(1));
        r.send(&mut ctx, NodeId(2), announce(2));
        r.send(&mut ctx, NodeId(1), announce(3));
        let seqs: Vec<(NodeId, u64)> = out
            .iter()
            .filter_map(|(to, m, _)| match m {
                Msg::Seq { seq, .. } => Some((*to, *seq)),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![(NodeId(1), 1), (NodeId(2), 1), (NodeId(1), 2)]);
    }
}
