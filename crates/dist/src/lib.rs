//! The distributed event-centric scheduler of Singh (ICDE 1996) — the
//! paper's headline system.
//!
//! A workflow's dependencies are compiled into localized temporal guards
//! (crate `guard`); one [`SymbolActor`] per event evaluates its own guard,
//! exchanging `□e` announcements, `◇e` promises (Example 11) and not-yet
//! agreements over a simulated distributed network (crate `sim`). Task
//! agents (crate `agent`) request permission for controllable events,
//! report immediate ones, and service triggers. No centralized scheduler
//! exists anywhere in the running system.

#![warn(missing_docs)]

mod actor;
mod agent_node;
mod exec;
mod journal;
mod msg;
pub mod parallel;
pub mod param;
mod reliable;
pub mod tenant;

pub use actor::{ActorStats, DepTracker, LitState, Routing, SymbolActor};
pub use agent_node::{AgentNode, Script, ScriptStep};
pub use exec::{
    build_workflow, guard_gated, run_workflow, run_workflow_threaded, run_workflow_with_faults,
    AgentSpec, BuiltWorkflow, DepRuntime, ExecConfig, FreeEventSpec, GuardMode, NetNode, Node,
    RunReport, WorkflowSpec,
};
pub use journal::{Journal, JournalEntry, JournalKind, NodeStore, WalEntry};
pub use msg::{InstanceId, Msg};
pub use parallel::{
    run_parallel_fleet, run_workflow_parallel, ParallelFleetReport, ParallelInstanceOutcome,
    ParallelRun,
};
pub use reliable::{Reliable, ReliableConfig};
pub use tenant::{run_tenant, Arrival, InstanceOutcome, TenantConfig, TenantReport};
