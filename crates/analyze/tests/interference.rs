//! Pass 5 (static interference) end-to-end scenarios: footprint-derived
//! conflicts produce WF030–WF033, and the emitted [`analyze::ShardPlan`]
//! certificate has the shape the runtime and the conformance auditor
//! rely on.

use analyze::{analyze_dependencies, analyze_workflow, AnalyzeOptions, Report, Severity};
use event_algebra::{parse_expr, ObligationKind, SymbolTable};
use speclang::LoweredWorkflow;

fn check(src: &str) -> Report {
    check_with(src, &AnalyzeOptions::default())
}

fn check_with(src: &str, opts: &AnalyzeOptions) -> Report {
    let w = LoweredWorkflow::parse(src).unwrap_or_else(|e| panic!("{e}"));
    analyze_workflow(&w, opts)
}

#[test]
fn precedence_pair_shares_a_colocation_class() {
    // e < f: the machine reaches ⊤ on e·f but 0 on f·e, so the pair is
    // non-commutable and must share a shard.
    let mut t = SymbolTable::new();
    let d = parse_expr("~e + ~f + e.f", &mut t).unwrap();
    let e = t.intern("e");
    let f = t.intern("f");
    let r = analyze_dependencies(&[d], &t, &AnalyzeOptions::default());
    let plan = r.shard_plan.expect("pass always emits a plan");
    assert_eq!(plan.class_count(), 1);
    assert!(plan.colocated(e, f));
    assert!(!plan.commutes(e, f));
    assert!(!plan.is_independent(e, f));
    assert!(plan.obligations.is_empty(), "no cross-class pairs: {:?}", plan.obligations);
    // The pair is guard-coupled, so the class sits inside one Lemma 5
    // coupling component: the plan refines the site-coupling quotient.
    assert!(plan.refines_site_coupling);
}

#[test]
fn arrow_pair_commutes_but_stays_guard_ordered() {
    // e → f commutes on every machine state, so the events may live in
    // different shards — but they are guard-coupled, so the cross-class
    // obligation is discharged by the coordination protocol, not by
    // commutativity, and the pair is *not* fully independent.
    let mut t = SymbolTable::new();
    let d = parse_expr("~e + f", &mut t).unwrap();
    let e = t.intern("e");
    let f = t.intern("f");
    let r = analyze_dependencies(&[d], &t, &AnalyzeOptions::default());
    let plan = r.shard_plan.expect("plan");
    assert_eq!(plan.class_count(), 2);
    assert!(plan.commutes(e, f));
    assert!(!plan.is_independent(e, f));
    assert_eq!(plan.obligations.len(), 1, "{:?}", plan.obligations);
    let o = &plan.obligations[0];
    assert_eq!((o.left, o.right, o.dep), (e.min(f), e.max(f), 0));
    assert_eq!(o.kind, ObligationKind::GuardOrdered);
    assert!(plan.refines_site_coupling);
}

#[test]
fn disjoint_dependencies_yield_full_independence() {
    let mut t = SymbolTable::new();
    let d1 = parse_expr("~a + b", &mut t).unwrap();
    let d2 = parse_expr("~c + d", &mut t).unwrap();
    let (a, b) = (t.intern("a"), t.intern("b"));
    let (c, d) = (t.intern("c"), t.intern("d"));
    let r = analyze_dependencies(&[d1, d2], &t, &AnalyzeOptions::default());
    let plan = r.shard_plan.expect("plan");
    assert_eq!(plan.class_count(), 4, "all singletons");
    for (x, y) in [(a, c), (a, d), (b, c), (b, d)] {
        assert!(plan.is_independent(x, y), "cross-dependency pairs are free");
    }
    assert!(!plan.is_independent(a, b), "coupled within d1");
    assert!(!plan.is_independent(c, d), "coupled within d2");
    // Obligations only exist where a machine is shared — the fully
    // disjoint pairs need no proof at all.
    assert!(plan
        .obligations
        .iter()
        .all(|o| (o.left, o.right) == (a.min(b), a.max(b))
            || (o.left, o.right) == (c.min(d), c.max(d))));
}

#[test]
fn wf032_fires_when_noncommutable_pair_pins_distinct_sites() {
    let r = check(
        "workflow bad {\n\
         \x20   event e @ site 0;\n\
         \x20   event f @ site 1;\n\
         \x20   dep d: ~e + ~f + e.f;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF032").expect("WF032");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("'e'") && d.message.contains("'f'"), "{}", d.message);
    assert!(d.message.contains("order changes the outcome"), "{}", d.message);
    assert_eq!(r.exit_code(false), 1, "WF032 is an error even without --deny");
    let plan = r.shard_plan.expect("plan still emitted for inspection");
    assert_eq!(plan.class_count(), 1);
}

#[test]
fn colocated_noncommutable_pair_is_not_an_error() {
    let r = check(
        "workflow ok {\n\
         \x20   event e @ site 3;\n\
         \x20   event f @ site 3;\n\
         \x20   dep d: ~e + ~f + e.f;\n\
         }\n",
    );
    assert!(!r.has_code("WF032"), "{:?}", r.diagnostics);
    let plan = r.shard_plan.expect("plan");
    assert_eq!(plan.classes[0].site, Some(3), "class inherits the shared site");
}

#[test]
fn wf030_write_write_race_on_shared_triggerable() {
    // e and f each force triggerable t (once they occur, every satisfying
    // completion of their dependency contains t), with no guard coupling
    // between e and f to order the two writers.
    let r = check(
        "workflow ww {\n\
         \x20   event e;\n\
         \x20   event f;\n\
         \x20   event t { triggerable };\n\
         \x20   dep d1: ~e + e.t;\n\
         \x20   dep d2: ~f + f.t;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF030").expect("WF030");
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        d.message.contains("'e'") && d.message.contains("'f'") && d.message.contains("'t'"),
        "{}",
        d.message
    );
    assert_eq!(r.exit_code(false), 0);
    assert_eq!(r.exit_code(true), 1, "warning under --deny warnings");
    // A racing pair is never claimed independent, even though it commutes.
    let plan = r.shard_plan.expect("plan");
    assert!(plan.independent.len() < plan.commuting.len(), "{plan:?}");
}

#[test]
fn wf031_guard_read_races_a_concurrent_writer() {
    // g's guard reads t; unrelated f triggers t; no coupling between g
    // and f orders the read against the write.
    let r = check(
        "workflow rw {\n\
         \x20   event g;\n\
         \x20   event f;\n\
         \x20   event t { triggerable };\n\
         \x20   dep d1: ~g + t.g;\n\
         \x20   dep d2: ~f + f.t;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF031").expect("WF031");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("'t'"), "{}", d.message);
}

#[test]
fn coupled_writers_suppress_the_race_codes() {
    // Same double-trigger shape, but e and f are themselves ordered by a
    // third dependency: the □/◇ protocol serializes the writers, so no
    // WF030 fires.
    let r = check(
        "workflow ordered {\n\
         \x20   event e;\n\
         \x20   event f;\n\
         \x20   event t { triggerable };\n\
         \x20   dep d1: ~e + e.t;\n\
         \x20   dep d2: ~f + f.t;\n\
         \x20   dep d3: ~e + f;\n\
         }\n",
    );
    assert!(!r.has_code("WF030"), "{:?}", r.diagnostics);
}

#[test]
fn wf033_flags_a_serialization_bottleneck() {
    // A hub whose guard footprint spans more classes than the threshold.
    let src = "workflow hub {\n\
               \x20   event r;\n\
               \x20   event a;\n\
               \x20   event b;\n\
               \x20   dep d1: r -> a;\n\
               \x20   dep d2: r -> b;\n\
               }\n";
    let tight =
        check_with(src, &AnalyzeOptions { bottleneck_shards: 1, ..AnalyzeOptions::default() });
    let d = tight.diagnostics.iter().find(|d| d.code == "WF033").expect("WF033");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("threshold 1"), "{}", d.message);
    let lax = check(src);
    assert!(!lax.has_code("WF033"), "default threshold of 4 is not exceeded");
}

#[test]
fn report_json_carries_plan_stats() {
    let r = check(
        "workflow j {\n\
         \x20   event e;\n\
         \x20   event f;\n\
         \x20   dep d: e -> f;\n\
         }\n",
    );
    let json = r.to_json(Some("j.wf"));
    assert!(json.contains("\"shard_classes\":2"), "{json}");
    assert!(json.contains("\"independent_pairs\":"), "{json}");
}
