//! Property tests: on universes of at most four symbols, the analyzer's
//! core verdicts (joint contradiction, dead events, forced events) agree
//! with brute-force enumeration of the maximal trace universe `U_T`.

use analyze::{analyze_dependencies, AnalyzeOptions};
use event_algebra::{enumerate_maximal, satisfies, Expr, Literal, SymbolId, SymbolTable, Trace};
use proptest::prelude::*;

fn lit_in(range: std::ops::Range<u32>) -> impl Strategy<Value = Literal> {
    (range, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

fn expr_over(range: std::ops::Range<u32>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => lit_in(range).prop_map(Expr::lit),
        1 => Just(Expr::Top),
        1 => Just(Expr::Zero),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 2..=2).prop_map(Expr::and),
            prop::collection::vec(inner, 2..=2).prop_map(Expr::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analyzer_agrees_with_trace_enumeration(
        deps in prop::collection::vec(expr_over(0..4), 1..=3),
    ) {
        let mut syms: Vec<SymbolId> = deps.iter().flat_map(|d| d.symbols()).collect();
        syms.sort();
        syms.dedup();
        let sat: Vec<Trace> = enumerate_maximal(&syms)
            .into_iter()
            .filter(|u| deps.iter().all(|d| satisfies(u, d)))
            .collect();
        let table = SymbolTable::new();
        let r = analyze_dependencies(&deps, &table, &AnalyzeOptions::default());
        prop_assert!(!r.incomplete, "default budget must cover 4 symbols");
        prop_assert_eq!(r.jointly_contradictory, sat.is_empty());
        for &s in &syms {
            let pos = Literal::pos(s);
            let brute_dead = !sat.is_empty() && sat.iter().all(|u| !u.contains(pos));
            let brute_forced = !sat.is_empty() && sat.iter().all(|u| u.contains(pos));
            prop_assert_eq!(r.dead.contains(&pos), brute_dead, "dead({})", pos);
            prop_assert_eq!(r.forced.contains(&pos), brute_forced, "forced({})", pos);
        }
        // The report's structured verdicts and its diagnostics agree.
        prop_assert_eq!(r.has_code("WF002"), !r.dead.is_empty());
        prop_assert_eq!(r.has_code("WF003"), !r.forced.is_empty());
    }

    /// A tiny budget must never produce a wrong verdict — only an
    /// incomplete one.
    #[test]
    fn cutoff_is_sound_not_wrong(
        deps in prop::collection::vec(expr_over(0..4), 1..=3),
        budget in 1usize..6,
    ) {
        let table = SymbolTable::new();
        let full = analyze_dependencies(&deps, &table, &AnalyzeOptions::default());
        let tight = analyze_dependencies(
            &deps,
            &table,
            &AnalyzeOptions { state_budget: budget, ..AnalyzeOptions::default() },
        );
        prop_assume!(!full.incomplete);
        if !tight.incomplete {
            prop_assert_eq!(tight.jointly_contradictory, full.jointly_contradictory);
            prop_assert_eq!(tight.dead.clone(), full.dead.clone());
            prop_assert_eq!(tight.forced.clone(), full.forced.clone());
        } else {
            // Verdicts that *were* reached are sound: a dead/forced claim
            // only appears when its query ran to completion.
            for l in &tight.dead {
                prop_assert!(full.dead.contains(l));
            }
            for l in &tight.forced {
                prop_assert!(full.forced.contains(l));
            }
        }
    }
}
