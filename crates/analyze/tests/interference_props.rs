//! Property tests: the interference pass's commutation claims agree with
//! brute-force schedule permutation. On universes of at most four
//! symbols, every adjacent transposition of a claimed-commuting pair in
//! every maximal trace must leave every dependency machine in the same
//! final state — the dynamic meaning of the static certificate.

use analyze::{analyze_dependencies, AnalyzeOptions};
use event_algebra::{enumerate_maximal, DependencyMachine, Expr, Literal, SymbolId, SymbolTable};
use proptest::prelude::*;

fn lit_in(range: std::ops::Range<u32>) -> impl Strategy<Value = Literal> {
    (range, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

fn expr_over(range: std::ops::Range<u32>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => lit_in(range).prop_map(Expr::lit),
        1 => Just(Expr::Top),
        1 => Just(Expr::Zero),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 2..=2).prop_map(Expr::and),
            prop::collection::vec(inner, 2..=2).prop_map(Expr::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Soundness of the commutation relation: a pair the plan claims
    /// commuting may be transposed at any adjacent position of any
    /// maximal trace without moving any machine to a different state.
    /// (The converse need not hold — the all-states machine check is
    /// deliberately conservative about states no consistent trace
    /// revisits — so only this direction is asserted.)
    #[test]
    fn claimed_commutation_survives_every_adjacent_transposition(
        deps in prop::collection::vec(expr_over(0..4), 1..=3),
    ) {
        let mut syms: Vec<SymbolId> = deps.iter().flat_map(|d| d.symbols()).collect();
        syms.sort();
        syms.dedup();
        let table = SymbolTable::new();
        let r = analyze_dependencies(&deps, &table, &AnalyzeOptions::default());
        let plan = r.shard_plan.expect("the interference pass always emits a plan");
        let machines = DependencyMachine::compile_all(&deps);
        for u in enumerate_maximal(&syms) {
            let ev = u.events().to_vec();
            for i in 0..ev.len().saturating_sub(1) {
                if !plan.commutes(ev[i].symbol(), ev[i + 1].symbol()) {
                    continue;
                }
                let mut w = ev.clone();
                w.swap(i, i + 1);
                for (ix, m) in machines.iter().enumerate() {
                    let q0 = ev.iter().fold(m.initial, |q, &l| m.step(q, l));
                    let q1 = w.iter().fold(m.initial, |q, &l| m.step(q, l));
                    prop_assert_eq!(
                        q0, q1,
                        "dep {} distinguishes transposing {} and {} at position {}",
                        ix, ev[i], ev[i + 1], i
                    );
                }
            }
        }
    }

    /// Structural invariants of the certificate: independence refines
    /// commutation, both relations are canonically ordered and sorted
    /// (binary-searchable), and colocated pairs never commute.
    #[test]
    fn certificate_invariants(
        deps in prop::collection::vec(expr_over(0..4), 1..=3),
    ) {
        let table = SymbolTable::new();
        let r = analyze_dependencies(&deps, &table, &AnalyzeOptions::default());
        let plan = r.shard_plan.expect("plan");
        for w in [&plan.commuting, &plan.independent] {
            prop_assert!(w.windows(2).all(|p| p[0] < p[1]), "sorted, deduped");
            prop_assert!(w.iter().all(|&(a, b)| a < b), "canonical pairs");
        }
        for &(a, b) in &plan.independent {
            prop_assert!(plan.commutes(a, b), "independence refines commutation");
        }
        // Any analyzed pair the plan does not claim commuting must have
        // been colocated — non-commutable pairs never straddle shards.
        let analyzed: Vec<_> =
            plan.classes.iter().flat_map(|c| c.events.iter().copied()).collect();
        for (i, &a) in analyzed.iter().enumerate() {
            for &b in &analyzed[i + 1..] {
                if !plan.commutes(a, b) {
                    prop_assert!(plan.colocated(a, b), "{a:?} {b:?} non-commutable yet split");
                }
            }
        }
    }
}
