//! End-to-end verification scenarios: each of the paper-grounded defect
//! classes produces its `WF0xx` diagnostic, with spans pointing at the
//! offending declarations.

use analyze::{analyze_dependencies, analyze_workflow, AnalyzeOptions, Report, Severity};
use event_algebra::{parse_expr, SymbolTable};
use speclang::{LoweredWorkflow, Span};

fn check(src: &str) -> Report {
    check_with(src, &AnalyzeOptions::default())
}

fn check_with(src: &str, opts: &AnalyzeOptions) -> Report {
    let w = LoweredWorkflow::parse(src).unwrap_or_else(|e| panic!("{e}"));
    analyze_workflow(&w, opts)
}

fn codes(r: &Report) -> Vec<&'static str> {
    let mut c: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
    c.sort_unstable();
    c.dedup();
    c
}

#[test]
fn clean_chain_has_no_findings_above_info() {
    let r = check(
        "workflow chain {\n\
         \x20   event submit;\n\
         \x20   event approve;\n\
         \x20   dep d1: submit -> approve;\n\
         }\n",
    );
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.exit_code(true), 0);
    // The coupling is still visible at info level (coordination needed).
    assert!(r.has_code("WF010"), "{:?}", codes(&r));
    assert!(!r.jointly_contradictory);
    assert!(r.dead.is_empty() && r.forced.is_empty());
}

#[test]
fn jointly_contradictory_pair_is_an_error_with_dep_spans() {
    let r = check(
        "workflow clash {\n\
         \x20   event pay;\n\
         \x20   dep want: pay;\n\
         \x20   dep veto: ~pay;\n\
         }\n",
    );
    assert!(r.jointly_contradictory);
    assert!(r.has_code("WF001"), "{:?}", codes(&r));
    assert_eq!(r.exit_code(false), 1);
    let d = r.diagnostics.iter().find(|d| d.code == "WF001").unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.primary_span(), Some(Span::at(3, 5)), "first dep span");
    assert!(d.spans.iter().any(|s| s.label.contains("veto")), "{:?}", d.spans);
}

#[test]
fn dead_and_forced_events_carry_event_spans() {
    let r = check(
        "workflow dead {\n\
         \x20   event go;\n\
         \x20   event stop;\n\
         \x20   dep d1: ~go;\n\
         \x20   dep d2: stop;\n\
         }\n",
    );
    assert!(r.has_code("WF002"), "{:?}", codes(&r));
    assert!(r.has_code("WF003"), "{:?}", codes(&r));
    let dead = r.diagnostics.iter().find(|d| d.code == "WF002").unwrap();
    assert_eq!(dead.severity, Severity::Warning);
    assert_eq!(dead.primary_span(), Some(Span::at(2, 5)), "event go declaration");
    assert!(dead.message.contains("'go'"), "{}", dead.message);
    // The dep that kills it is cited as a secondary span.
    assert!(dead.spans.iter().any(|s| s.label.contains("d1")), "{:?}", dead.spans);
    let forced = r.diagnostics.iter().find(|d| d.code == "WF003").unwrap();
    assert_eq!(forced.severity, Severity::Info);
    assert_eq!(forced.primary_span(), Some(Span::at(3, 5)));
    // Dead is a warning: clean without deny, non-zero with.
    assert_eq!(r.exit_code(false), 0);
    assert_eq!(r.exit_code(true), 1);
}

#[test]
fn three_event_consensus_cycle_is_found_beyond_pairwise() {
    let src = "workflow ring {\n\
               \x20   event e;\n\
               \x20   event f;\n\
               \x20   event g;\n\
               \x20   dep d1: e -> f;\n\
               \x20   dep d2: f -> g;\n\
               \x20   dep d3: g -> e;\n\
               }\n";
    let w = LoweredWorkflow::parse(src).unwrap();
    // The pairwise scan in guard::analysis cannot see a 3-cycle…
    let pairwise = guard::analyze(&w.ground_deps);
    assert!(pairwise.consensus_pairs.is_empty(), "{pairwise:?}");
    // …but the SCC pass reports the consensus group exactly once (its
    // complement mirror is suppressed).
    let r = analyze_workflow(&w, &AnalyzeOptions::default());
    let cycles: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "WF020").collect();
    assert_eq!(cycles.len(), 1, "{:?}", r.diagnostics);
    let d = cycles[0];
    assert_eq!(d.severity, Severity::Warning);
    for name in ["e", "f", "g"] {
        assert!(d.message.contains(name), "{}", d.message);
    }
    // Spans point at all three event declarations.
    assert_eq!(d.spans.len(), 3, "{:?}", d.spans);
    assert_eq!(r.exit_code(true), 1);
}

#[test]
fn hold_contention_cycle_is_reported() {
    // Ground mutual exclusion in both directions (Example 13 idiom):
    // each enter's guard carries ¬ on the other side.
    let r = check(
        "workflow mutex {\n\
         \x20   event b1;\n\
         \x20   event e1;\n\
         \x20   event b2;\n\
         \x20   event e2;\n\
         \x20   dep d12: b2.b1 + ~e1 + ~b2 + e1.b2;\n\
         \x20   dep d21: b1.b2 + ~e2 + ~b1 + e2.b1;\n\
         }\n",
    );
    assert!(
        r.has_code("WF021") || r.has_code("WF022"),
        "expected a hold-contention or mixed cycle: {:?}",
        codes(&r)
    );
    assert_eq!(r.exit_code(true), 1);
}

#[test]
fn cross_site_coupling_violates_lemma5() {
    let r = check(
        "workflow dist {\n\
         \x20   event ship @ site 0;\n\
         \x20   event bill @ site 1;\n\
         \x20   dep d1: ship -> bill;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF011").expect("WF011");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("site 0") && d.message.contains("site 1"), "{}", d.message);
    assert!(d.message.contains("d1"), "{}", d.message);
    assert_eq!(d.primary_span(), Some(Span::at(2, 5)));
    assert_eq!(r.exit_code(false), 0);
    assert_eq!(r.exit_code(true), 1);
}

#[test]
fn colocated_coupling_stays_informational() {
    let r = check(
        "workflow local {\n\
         \x20   event ship @ site 2;\n\
         \x20   event bill @ site 2;\n\
         \x20   dep d1: ship -> bill;\n\
         }\n",
    );
    assert!(!r.has_code("WF011"), "{:?}", codes(&r));
    let d = r.diagnostics.iter().find(|d| d.code == "WF010").expect("WF010");
    assert!(d.message.contains("site 2"), "{}", d.message);
    assert!(r.is_clean());
}

fn chain(n: usize) -> String {
    let mut s = String::from("workflow big {\n");
    for i in 0..n {
        s.push_str(&format!("    event e{i};\n"));
    }
    for i in 0..n - 1 {
        s.push_str(&format!("    dep d{i}: e{i} -> e{};\n", i + 1));
    }
    s.push('}');
    s
}

#[test]
fn ten_symbol_workflow_completes_under_default_budget() {
    let r = check(&chain(10));
    assert!(!r.incomplete, "{:?}", r.diagnostics);
    assert!(!r.has_code("WF006"));
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert!(r.states_explored > 0);
}

#[test]
fn tight_budget_degrades_to_wf006_instead_of_hanging() {
    let r =
        check_with(&chain(10), &AnalyzeOptions { state_budget: 4, ..AnalyzeOptions::default() });
    assert!(r.incomplete);
    let d = r.diagnostics.iter().find(|d| d.code == "WF006").expect("WF006");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("budget of 4"), "{}", d.message);
    assert_eq!(r.exit_code(true), 1);
}

#[test]
fn individually_unsatisfiable_dependency_is_wf004_not_wf001() {
    let r = check(
        "workflow broken {\n\
         \x20   event a;\n\
         \x20   dep bad: 0;\n\
         \x20   dep ok: a;\n\
         }\n",
    );
    assert!(r.has_code("WF004"), "{:?}", codes(&r));
    assert!(!r.has_code("WF001"), "WF004 already names the culprit: {:?}", codes(&r));
    let d = r.diagnostics.iter().find(|d| d.code == "WF004").unwrap();
    assert!(d.message.contains("bad"), "{}", d.message);
    assert_eq!(r.exit_code(false), 1);
}

#[test]
fn violable_dependency_reports_trap_states() {
    let r = check(
        "workflow seq {\n\
         \x20   event a;\n\
         \x20   event b;\n\
         \x20   dep d1: a.b;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF005").expect("WF005");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("trap"), "{}", d.message);
}

#[test]
fn templates_are_reported_as_skipped() {
    let r = check(
        "workflow param {\n\
         \x20   event a;\n\
         \x20   dep d1: ~f[y] + g[y];\n\
         \x20   dep d2: a;\n\
         }\n",
    );
    let d = r.diagnostics.iter().find(|d| d.code == "WF007").expect("WF007");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.spans.iter().any(|s| s.label.contains("d1")), "{:?}", d.spans);
}

#[test]
fn bare_dependency_sets_analyze_without_spans() {
    let mut t = SymbolTable::new();
    let d1 = parse_expr("~e", &mut t).unwrap();
    let d2 = parse_expr("f", &mut t).unwrap();
    let e = t.event("e");
    let f = t.event("f");
    let r = analyze_dependencies(&[d1, d2], &t, &AnalyzeOptions::default());
    assert_eq!(r.dead, vec![e]);
    assert_eq!(r.forced, vec![f]);
    let dead = r.diagnostics.iter().find(|d| d.code == "WF002").unwrap();
    assert_eq!(dead.primary_span(), None, "synthetic spans only");
    assert!(dead.message.contains("'e'"), "{}", dead.message);
}

#[test]
fn report_renders_text_and_json() {
    let r = check(
        "workflow demo {\n\
         \x20   event go;\n\
         \x20   dep d1: ~go;\n\
         }\n",
    );
    let text = r.render_text(Some("demo.wf"));
    assert!(text.contains("demo.wf:2:5: warning[WF002]"), "{text}");
    assert!(text.contains("1 warning"), "{text}");
    assert!(text.contains("product states explored"), "{text}");
    let json = r.to_json(Some("demo.wf"));
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"file\":\"demo.wf\""), "{json}");
    assert!(json.contains("\"code\":\"WF002\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
}

#[test]
fn diagnostics_are_sorted_by_source_position() {
    let r = check(
        "workflow order {\n\
         \x20   event go;\n\
         \x20   event stop;\n\
         \x20   dep d1: ~go;\n\
         \x20   dep d2: stop;\n\
         }\n",
    );
    let positions: Vec<Option<Span>> =
        r.diagnostics.iter().map(analyze::Diagnostic::primary_span).collect();
    let mut sorted = positions.clone();
    // `None` (synthetic) sorts last, matching Report::finish.
    sorted.sort_by_key(|s| s.unwrap_or(Span::at(usize::MAX, usize::MAX)));
    assert_eq!(positions, sorted);
}
