//! Pass 2: distribution safety — event-wise independence (Lemma 5).
//!
//! The paper's distribution result needs dependencies whose events are
//! *event-wise independent* across sites: an event's guard may only
//! mention events whose announcements can reach its actor. Whenever the
//! synthesized guard of either polarity of `a` mentions symbol `b`, the
//! two actors must exchange coordination messages (`□`/`◇`
//! announcements). Same-site or unplaced couplings are reported for
//! visibility (`WF010`); couplings straddling two declared sites violate
//! the independence precondition and cost cross-site messages on the
//! critical path (`WF011`).

use crate::{Ctx, Diagnostic, Report, Severity};
use event_algebra::{Literal, SymbolId};
use std::collections::BTreeSet;

pub(crate) fn run(ctx: &Ctx<'_>, report: &mut Report) {
    let mut pairs: BTreeSet<(SymbolId, SymbolId)> = BTreeSet::new();
    for &sym in &ctx.compiled.symbols {
        for lit in [Literal::pos(sym), Literal::neg(sym)] {
            for other in ctx.compiled.subscriptions(lit) {
                let (a, b) = if sym < other { (sym, other) } else { (other, sym) };
                pairs.insert((a, b));
            }
        }
    }
    for (a, b) in pairs {
        let via = ctx.deps_mentioning_all(&[a, b]);
        let via_text = match via.len() {
            0 => String::new(), // coupled only through conjoined guards
            _ => format!(
                " (coupled by {})",
                via.iter().map(|&ix| ctx.dep_label(ix)).collect::<Vec<_>>().join(", ")
            ),
        };
        let (sa, sb) = (ctx.site_of(a), ctx.site_of(b));
        let (span_a, label_a) = ctx.event_span(a);
        let (span_b, label_b) = ctx.event_span(b);
        let mut d = match (sa, sb) {
            (Some(x), Some(y)) if x != y => Diagnostic::new(
                "WF011",
                Severity::Warning,
                format!(
                    "events '{}' (site {x}) and '{}' (site {y}) are not event-wise \
                     independent{via_text}: enforcement requires coordination messages \
                     between sites {x} and {y} (Lemma 5 precondition fails)",
                    ctx.sym_name(a),
                    ctx.sym_name(b),
                ),
            ),
            _ => {
                let placement = match (sa, sb) {
                    (Some(x), Some(_)) => {
                        format!("they are co-located at site {x}, so messages stay local")
                    }
                    _ => "at least one of them is unplaced".to_owned(),
                };
                Diagnostic::new(
                    "WF010",
                    Severity::Info,
                    format!(
                        "events '{}' and '{}' must exchange coordination \
                         messages{via_text}; {placement}",
                        ctx.sym_name(a),
                        ctx.sym_name(b),
                    ),
                )
            }
        };
        d = d.with_span(span_a, label_a).with_span(span_b, label_b);
        for ix in via {
            d = d.with_span(ctx.dep_span(ix), ctx.dep_label(ix));
        }
        report.push(d);
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze_dependencies, AnalyzeOptions};
    use event_algebra::{parse_expr, SymbolTable};

    #[test]
    fn symmetric_pairs_report_once() {
        // Coupling is symmetric — guard(e) mentions f *and* guard(f)
        // mentions e — but each unordered pair must surface as exactly
        // one WF010, never once per direction.
        let mut t = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut t).unwrap();
        let report = analyze_dependencies(&[d], &t, &AnalyzeOptions::default());
        let wf010: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "WF010").collect();
        assert_eq!(wf010.len(), 1, "one diagnostic per unordered pair: {wf010:?}");
        assert!(wf010[0].message.contains("'e'") && wf010[0].message.contains("'f'"));
    }

    #[test]
    fn duplicate_dependencies_do_not_duplicate_pairs() {
        // The same dependency twice couples the same pair through two
        // guard conjuncts; the pair still reports once.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut t).unwrap();
        let d2 = parse_expr("~e + f", &mut t).unwrap();
        let report = analyze_dependencies(&[d1, d2], &t, &AnalyzeOptions::default());
        assert_eq!(report.diagnostics.iter().filter(|d| d.code == "WF010").count(), 1);
    }
}
