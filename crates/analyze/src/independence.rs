//! Pass 2: distribution safety — event-wise independence (Lemma 5).
//!
//! The paper's distribution result needs dependencies whose events are
//! *event-wise independent* across sites: an event's guard may only
//! mention events whose announcements can reach its actor. Whenever the
//! synthesized guard of either polarity of `a` mentions symbol `b`, the
//! two actors must exchange coordination messages (`□`/`◇`
//! announcements). Same-site or unplaced couplings are reported for
//! visibility (`WF010`); couplings straddling two declared sites violate
//! the independence precondition and cost cross-site messages on the
//! critical path (`WF011`).

use crate::{Ctx, Diagnostic, Report, Severity};
use event_algebra::{Literal, SymbolId};
use std::collections::BTreeSet;

pub(crate) fn run(ctx: &Ctx<'_>, report: &mut Report) {
    let mut pairs: BTreeSet<(SymbolId, SymbolId)> = BTreeSet::new();
    for &sym in &ctx.compiled.symbols {
        for lit in [Literal::pos(sym), Literal::neg(sym)] {
            for other in ctx.compiled.subscriptions(lit) {
                let (a, b) = if sym < other { (sym, other) } else { (other, sym) };
                pairs.insert((a, b));
            }
        }
    }
    for (a, b) in pairs {
        let via = ctx.deps_mentioning_all(&[a, b]);
        let via_text = match via.len() {
            0 => String::new(), // coupled only through conjoined guards
            _ => format!(
                " (coupled by {})",
                via.iter().map(|&ix| ctx.dep_label(ix)).collect::<Vec<_>>().join(", ")
            ),
        };
        let (sa, sb) = (ctx.site_of(a), ctx.site_of(b));
        let (span_a, label_a) = ctx.event_span(a);
        let (span_b, label_b) = ctx.event_span(b);
        let mut d = match (sa, sb) {
            (Some(x), Some(y)) if x != y => Diagnostic::new(
                "WF011",
                Severity::Warning,
                format!(
                    "events '{}' (site {x}) and '{}' (site {y}) are not event-wise \
                     independent{via_text}: enforcement requires coordination messages \
                     between sites {x} and {y} (Lemma 5 precondition fails)",
                    ctx.sym_name(a),
                    ctx.sym_name(b),
                ),
            ),
            _ => {
                let placement = match (sa, sb) {
                    (Some(x), Some(_)) => {
                        format!("they are co-located at site {x}, so messages stay local")
                    }
                    _ => "at least one of them is unplaced".to_owned(),
                };
                Diagnostic::new(
                    "WF010",
                    Severity::Info,
                    format!(
                        "events '{}' and '{}' must exchange coordination \
                         messages{via_text}; {placement}",
                        ctx.sym_name(a),
                        ctx.sym_name(b),
                    ),
                )
            }
        };
        d = d.with_span(span_a, label_a).with_span(span_b, label_b);
        for ix in via {
            d = d.with_span(ctx.dep_span(ix), ctx.dep_label(ix));
        }
        report.push(d);
    }
}
