//! Static verification of workflow specifications before deployment.
//!
//! The schedulers in this workspace enforce dependencies at runtime; this
//! crate answers, *before* any event is attempted, whether a workflow can
//! work at all and what coordination it will cost. Five passes, one
//! [`Report`]:
//!
//! 1. **Automaton core** — product reachability over the per-dependency
//!    residual machines ([`event_algebra::ProductMachine`]) decides joint
//!    satisfiability and, per event, deadness/forcedness, under an
//!    explicit state budget that is *reported* rather than silently
//!    truncating. Per-dependency machines are checked for accepting
//!    states and reachable traps.
//! 2. **Distribution safety** — the event-wise independence precondition
//!    of the paper's distribution theorem (Definition 3 / Lemma 5): which
//!    event pairs are coupled through some dependency's guard, and which
//!    of those straddle sites and therefore need cross-site coordination
//!    messages.
//! 3. **Need-graph deadlock** — a wait-for graph over the facts each
//!    synthesized guard awaits ([`temporal::need_edges`]); strongly
//!    connected components expose `◇`-consensus groups and `¬`-hold
//!    contention cycles of any length, and mixed cycles that can deadlock
//!    a distributed execution.
//! 4. **Static interference** — per-event read/write footprints from the
//!    compiled guard and machine tables, a conflict graph over event
//!    pairs (non-commutable machine steps, racing trigger writes), its
//!    complement independence relation, and a certified [`ShardPlan`]:
//!    colocation classes refining the Lemma 5 quotient, with one
//!    discharged commutativity proof obligation per cross-class pair.
//! 5. **Diagnostics** — every finding is a [`Diagnostic`] with a stable
//!    `WF0xx` code, severity, and source spans threaded from the spec
//!    language, rendered as compiler-style text or JSON.
//!
//! # Diagnostic codes
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | WF000 | error    | specification parse error |
//! | WF001 | error    | dependencies jointly contradictory — no satisfying execution |
//! | WF002 | warning  | dead event: occurs in no satisfying execution |
//! | WF003 | info     | forced event: occurs in every satisfying execution |
//! | WF004 | error    | dependency individually unsatisfiable (no accepting state) |
//! | WF005 | info     | dependency violable: reachable trap states |
//! | WF006 | warning  | state budget exhausted; dead/forced verdicts incomplete |
//! | WF007 | info     | parametrized templates skipped by static checking |
//! | WF010 | info     | coupled events require coordination messages |
//! | WF011 | warning  | coupled events straddle sites (Lemma 5 precondition fails) |
//! | WF020 | warning  | `◇`-consensus cycle: promises must be granted jointly |
//! | WF021 | warning  | `¬`-hold contention cycle: not-yet agreements chase each other |
//! | WF022 | warning  | mixed `◇`/`¬` cycle: potential distributed deadlock |
//! | WF030 | warning  | write-write race: two uncoupled events trigger the same literal |
//! | WF031 | warning  | guard read races a concurrent trigger writer |
//! | WF032 | error    | non-commutable pair pinned to different sites — unshardable |
//! | WF033 | info     | serialization bottleneck: event touches more shards than the threshold |

#![warn(missing_docs)]

mod automaton;
mod diag;
mod independence;
mod interference;
mod needgraph;

pub use diag::{json_str, Diagnostic, LabeledSpan, Severity};
pub use event_algebra::{Obligation, ObligationKind, ShardClass, ShardPlan};
pub use guard::DEFAULT_STATE_BUDGET;

use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use guard::{CompiledWorkflow, GuardScope};
use speclang::{DepOrigin, LoweredEvent, LoweredWorkflow, Span};

/// Tunables for an analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Maximum number of product states the reachability core may intern
    /// across all queries; exceeding it yields `WF006` instead of an
    /// unbounded search.
    pub state_budget: usize,
    /// `WF033` advisory threshold: an event whose footprint spans more
    /// than this many shard classes is flagged as a serialization
    /// bottleneck for a parallel runtime.
    pub bottleneck_shards: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions { state_budget: DEFAULT_STATE_BUDGET, bottleneck_shards: 4 }
    }
}

/// The outcome of verifying one workflow.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workflow name, when analyzed from a lowered specification.
    pub workflow: Option<String>,
    /// All findings, sorted by source position then code.
    pub diagnostics: Vec<Diagnostic>,
    /// Product states interned by the reachability core.
    pub states_explored: usize,
    /// `true` when the state budget cut some verdict short (`WF006`).
    pub incomplete: bool,
    /// `true` when the dependencies admit no common satisfying execution.
    pub jointly_contradictory: bool,
    /// Events (positive literals) that occur in no satisfying execution.
    pub dead: Vec<Literal>,
    /// Events (positive literals) that occur in every satisfying
    /// execution.
    pub forced: Vec<Literal>,
    /// The shard-plan certificate from the interference pass: colocation
    /// classes, the independence relation, and discharged cross-class
    /// proof obligations. `None` only when the pass never ran (parse
    /// errors).
    pub shard_plan: Option<ShardPlan>,
}

impl Report {
    fn new(workflow: Option<String>) -> Report {
        Report {
            workflow,
            diagnostics: Vec::new(),
            states_explored: 0,
            incomplete: false,
            jointly_contradictory: false,
            dead: Vec::new(),
            forced: Vec::new(),
            shard_plan: None,
        }
    }

    /// Wrap a parse failure as a report carrying a single `WF000`
    /// diagnostic, so callers handle unparsable and unsound
    /// specifications uniformly.
    pub fn from_spec_error(err: &speclang::SpecError) -> Report {
        let mut r = Report::new(None);
        r.push(Diagnostic::from_spec_error(err));
        r
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }

    /// `true` when some finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// `true` when nothing at warning level or above was found.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0 && self.count(Severity::Warning) == 0
    }

    /// Process exit code: errors always fail; warnings fail under
    /// `deny_warnings`.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        let failing =
            self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0);
        i32::from(failing)
    }

    /// One-line totals, e.g. `2 errors, 1 warning, 3 notes; 57 product
    /// states explored`.
    pub fn summary_line(&self) -> String {
        fn n(count: usize, what: &str) -> String {
            let s = if count == 1 { "" } else { "s" };
            format!("{count} {what}{s}")
        }
        format!(
            "{}, {}, {}; {} product states explored{}",
            n(self.count(Severity::Error), "error"),
            n(self.count(Severity::Warning), "warning"),
            n(self.count(Severity::Info), "note"),
            self.states_explored,
            if self.incomplete { " (incomplete)" } else { "" }
        )
    }

    /// Render every diagnostic plus the summary line as compiler-style
    /// text.
    pub fn render_text(&self, file: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(file));
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// Render the whole report as one JSON object.
    pub fn to_json(&self, file: Option<&str>) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json(file)).collect();
        let mut fields = Vec::new();
        if let Some(f) = file {
            fields.push(format!("\"file\":{}", json_str(f)));
        }
        if let Some(w) = &self.workflow {
            fields.push(format!("\"workflow\":{}", json_str(w)));
        }
        fields.push(format!("\"states_explored\":{}", self.states_explored));
        fields.push(format!("\"incomplete\":{}", self.incomplete));
        fields.push(format!("\"errors\":{}", self.count(Severity::Error)));
        fields.push(format!("\"warnings\":{}", self.count(Severity::Warning)));
        if let Some(plan) = &self.shard_plan {
            fields.push(format!("\"shard_classes\":{}", plan.class_count()));
            fields.push(format!("\"independent_pairs\":{}", plan.independent.len()));
        }
        fields.push(format!("\"diagnostics\":[{}]", diags.join(",")));
        format!("{{{}}}", fields.join(","))
    }

    fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                let sp = d.primary_span().unwrap_or(Span::at(usize::MAX, usize::MAX));
                (sp.line, sp.col, d.code, d.message.clone())
            };
            key(a).cmp(&key(b))
        });
    }
}

/// Everything the passes need to name, place, and locate declarations.
pub(crate) struct Ctx<'a> {
    pub table: &'a SymbolTable,
    pub deps: &'a [Expr],
    pub dep_origins: &'a [DepOrigin],
    pub events: &'a [LoweredEvent],
    pub compiled: CompiledWorkflow,
}

impl Ctx<'_> {
    pub fn lit_name(&self, l: Literal) -> String {
        self.table.literal_name(l)
    }

    pub fn sym_name(&self, s: SymbolId) -> String {
        self.table.literal_name(Literal::pos(s))
    }

    fn event_of(&self, s: SymbolId) -> Option<&LoweredEvent> {
        self.events.iter().find(|e| e.literal.symbol() == s)
    }

    pub fn site_of(&self, s: SymbolId) -> Option<u32> {
        self.event_of(s).and_then(|e| e.site)
    }

    /// `true` when `s` is declared triggerable: its occurrence can be
    /// proactively caused by the scheduler, so it counts as a *write*
    /// target in the interference pass. Bare dependency sets declare
    /// nothing, so nothing is triggerable there.
    pub fn triggerable(&self, s: SymbolId) -> bool {
        self.event_of(s).is_some_and(|e| e.triggerable)
    }

    /// Span + label for the event declaring `s` (synthetic when the
    /// symbol only appears inside dependencies).
    pub fn event_span(&self, s: SymbolId) -> (Span, String) {
        match self.event_of(s) {
            Some(e) => (e.span, format!("event '{}'", e.name)),
            None => (Span::default(), format!("event '{}' (undeclared)", self.sym_name(s))),
        }
    }

    pub fn dep_label(&self, ix: usize) -> String {
        match self.dep_origins.get(ix).and_then(|o| o.label.as_deref()) {
            Some(l) => format!("dep '{l}'"),
            None => format!("dependency #{}", ix + 1),
        }
    }

    pub fn dep_span(&self, ix: usize) -> Span {
        self.dep_origins.get(ix).map_or_else(Span::default, |o| o.span)
    }

    /// Indices of dependencies mentioning every symbol in `syms`.
    pub fn deps_mentioning_all(&self, syms: &[SymbolId]) -> Vec<usize> {
        self.deps
            .iter()
            .enumerate()
            .filter(|(_, d)| syms.iter().all(|&s| d.mentions(s)))
            .map(|(ix, _)| ix)
            .collect()
    }
}

/// Verify a lowered workflow specification: all four passes, with spans
/// taken from the declarations.
pub fn analyze_workflow(w: &LoweredWorkflow, opts: &AnalyzeOptions) -> Report {
    let mut report = Report::new(Some(w.name.clone()));
    let ctx = Ctx {
        table: &w.table,
        deps: &w.ground_deps,
        dep_origins: &w.dep_origins,
        events: &w.events,
        compiled: CompiledWorkflow::compile(&w.ground_deps, GuardScope::Mentioning),
    };
    if !w.templates.is_empty() {
        let mut d = Diagnostic::new(
            "WF007",
            Severity::Info,
            format!(
                "{} parametrized dependency template(s) are not statically checked; \
                 the dynamic scheduler instantiates them at runtime",
                w.templates.len()
            ),
        );
        for o in &w.template_origins {
            let label = match &o.label {
                Some(l) => format!("template '{l}'"),
                None => "template".to_owned(),
            };
            d = d.with_span(o.span, label);
        }
        report.push(d);
    }
    run_passes(&ctx, opts, &mut report);
    report
}

/// Verify a bare dependency set (no declarations, so spans are synthetic
/// and site information is unavailable).
pub fn analyze_dependencies(deps: &[Expr], table: &SymbolTable, opts: &AnalyzeOptions) -> Report {
    let mut report = Report::new(None);
    let ctx = Ctx {
        table,
        deps,
        dep_origins: &[],
        events: &[],
        compiled: CompiledWorkflow::compile(deps, GuardScope::Mentioning),
    };
    run_passes(&ctx, opts, &mut report);
    report
}

fn run_passes(ctx: &Ctx<'_>, opts: &AnalyzeOptions, report: &mut Report) {
    automaton::run(ctx, opts.state_budget, report);
    independence::run(ctx, report);
    needgraph::run(ctx, report);
    interference::run(ctx, opts.bottleneck_shards, report);
    report.finish();
}
