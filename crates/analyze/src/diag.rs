//! Structured diagnostics: codes, severities, spans, and rendering.
//!
//! Every finding of the static verifier is a [`Diagnostic`] with a stable
//! `WF0xx` code, so CI pipelines can gate on specific conditions and the
//! human/JSON renderings stay in lockstep. The code space is grouped by
//! pass: `WF00x` automaton core, `WF01x` distribution safety, `WF02x`
//! need-graph deadlock detection.

use speclang::{Span, SpecError};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: surfaced for visibility, never fails a build.
    Info,
    /// Suspicious: fails the build only under `--deny warnings`.
    Warning,
    /// Definitely broken: always fails the build.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A source span with a role label ("event 'approve'", "dep 'd2'").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledSpan {
    /// Position in the specification source (synthetic for declarations
    /// built programmatically).
    pub span: Span,
    /// What sits at that position.
    pub label: String,
}

impl LabeledSpan {
    /// A labeled span.
    pub fn new(span: Span, label: impl Into<String>) -> LabeledSpan {
        LabeledSpan { span, label: label.into() }
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`WF001`…). See the crate docs for
    /// the full table.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The declarations involved, primary span first.
    pub spans: Vec<LabeledSpan>,
}

impl Diagnostic {
    /// A new diagnostic with no spans attached yet.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity, message: message.into(), spans: Vec::new() }
    }

    /// Attach a span (builder style).
    pub fn with_span(mut self, span: Span, label: impl Into<String>) -> Diagnostic {
        self.spans.push(LabeledSpan::new(span, label));
        self
    }

    /// Wrap a parser error as a `WF000` diagnostic, so the CLI reports
    /// syntax and semantic findings uniformly.
    pub fn from_spec_error(err: &SpecError) -> Diagnostic {
        Diagnostic::new("WF000", Severity::Error, format!("parse error: {}", err.message))
            .with_span(Span::at(err.line, err.col), "here")
    }

    /// The primary span, if any non-synthetic one exists.
    pub fn primary_span(&self) -> Option<Span> {
        self.spans.iter().map(|s| s.span).find(|s| !s.is_synthetic())
    }

    /// Render as a compiler-style line, optionally prefixed by a file
    /// name: `spec.wf:3:5: warning[WF002]: …`. Secondary spans follow as
    /// indented notes.
    pub fn render(&self, file: Option<&str>) -> String {
        let mut out = String::new();
        let mut prefix = String::new();
        if let Some(f) = file {
            prefix.push_str(f);
            prefix.push(':');
        }
        if let Some(sp) = self.primary_span() {
            prefix.push_str(&format!("{sp}:"));
        }
        if !prefix.is_empty() {
            prefix.push(' ');
        }
        out.push_str(&format!("{prefix}{}[{}]: {}", self.severity, self.code, self.message));
        for s in self.spans.iter().skip(1) {
            if s.span.is_synthetic() {
                out.push_str(&format!("\n    note: {}", s.label));
            } else {
                out.push_str(&format!("\n    note: {} at {}", s.label, s.span));
            }
        }
        out
    }

    /// Render as a JSON object (hand-rolled: the workspace deliberately
    /// carries no serialization dependency). When `file` is known it is
    /// emitted on *every* diagnostic — including span-less ones — so
    /// downstream tooling can group findings by spec without joining
    /// against the report envelope.
    pub fn to_json(&self, file: Option<&str>) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"line\":{},\"col\":{},\"label\":{}}}",
                    s.span.line,
                    s.span.col,
                    json_str(&s.label)
                )
            })
            .collect();
        let file_field = match file {
            Some(f) => format!("\"file\":{},", json_str(f)),
            None => String::new(),
        };
        format!(
            "{{{file_field}\"code\":{},\"severity\":{},\"message\":{},\"spans\":[{}]}}",
            json_str(self.code),
            json_str(&self.severity.to_string()),
            json_str(&self.message),
            spans.join(",")
        )
    }
}

/// Escape a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_file_and_span() {
        let d = Diagnostic::new("WF002", Severity::Warning, "event 'e' is dead")
            .with_span(Span::at(3, 5), "event 'e'")
            .with_span(Span::at(7, 9), "dep 'd1'");
        let r = d.render(Some("spec.wf"));
        assert!(r.starts_with("spec.wf:3:5: warning[WF002]: event 'e' is dead"), "{r}");
        assert!(r.contains("note: dep 'd1' at 7:9"), "{r}");
    }

    #[test]
    fn renders_without_spans() {
        let d = Diagnostic::new("WF001", Severity::Error, "contradiction");
        assert_eq!(d.render(None), "error[WF001]: contradiction");
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let d = Diagnostic::new("WF001", Severity::Error, "x").with_span(Span::at(1, 2), "y");
        assert_eq!(
            d.to_json(None),
            "{\"code\":\"WF001\",\"severity\":\"error\",\"message\":\"x\",\
             \"spans\":[{\"line\":1,\"col\":2,\"label\":\"y\"}]}"
        );
    }

    #[test]
    fn json_carries_file_even_without_spans() {
        // Span-less findings (e.g. WF001 on a programmatic dependency
        // set) must still name their spec so tooling can group by file.
        let d = Diagnostic::new("WF001", Severity::Error, "contradiction");
        assert_eq!(
            d.to_json(Some("spec.wf")),
            "{\"file\":\"spec.wf\",\"code\":\"WF001\",\"severity\":\"error\",\
             \"message\":\"contradiction\",\"spans\":[]}"
        );
    }

    #[test]
    fn spec_errors_become_wf000() {
        let err = speclang::parse_workflow("workflow x {\n  dep d1 ~e;\n}").unwrap_err();
        let d = Diagnostic::from_spec_error(&err);
        assert_eq!(d.code, "WF000");
        assert_eq!(d.primary_span(), Some(Span::at(2, 7)), "position of the unlabeled dep");
    }

    #[test]
    fn severity_ordering_matches_gating() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
