//! Pass 4: static interference — footprints, schedule races, and the
//! certified shard plan.
//!
//! The distribution passes so far answer *where coordination messages
//! flow* (pass 2, Lemma 5). A parallel runtime needs the complementary
//! question answered: *which events may execute concurrently without
//! changing observable behavior?* This pass computes, per event, a
//! read/write footprint from the compiled guard and machine tables —
//! guard symbols read ([`guard::CompiledWorkflow::subscriptions`]),
//! literals written (the event's own fact plus every triggerable literal
//! a step of the event newly forces, via
//! [`event_algebra::DependencyMachine::requires_event`]), and dependency
//! machines stepped — then derives a conflict graph over event pairs:
//!
//! - **non-commutable**: some shared machine distinguishes the two
//!   orders ([`DependencyMachine::symbols_commute`] fails) — the pair
//!   must share a shard, because a scheduler realizing either order
//!   from different queues would change residuals;
//! - **guard-coupled**: one guard reads the other's symbol — the
//!   `□`/`◇` protocol already serializes the pair (pass 2's relation);
//! - **write-write / read-write racing**: overlapping trigger targets
//!   with no coupling to order them (`WF030`, `WF031`).
//!
//! The complement of the conflict graph is the independence relation.
//! Colocation classes are the connected components of the
//! non-commutable relation; they *refine* the Lemma 5 site-coupling
//! quotient (a non-commutable pair is always guard-coupled in a sound
//! synthesis, so classes never merge across coupling components — the
//! pass verifies rather than assumes this). The result is serialized as
//! a [`ShardPlan`] certificate carrying the classes, the independence
//! relation, and one discharged proof obligation per cross-class pair
//! per shared dependency. The conformance harness validates the
//! certificate dynamically by transposing independent pairs in realized
//! traces and asserting identical occurrence sets and `□`-views.

use crate::{Ctx, Diagnostic, Report, Severity};
use event_algebra::shard::canonical;
use event_algebra::{Literal, Obligation, ObligationKind, ShardClass, ShardPlan, SymbolId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-event footprint over the compiled tables.
struct Footprint {
    /// Guard symbols read (either polarity's guard), own symbol excluded.
    reads: BTreeSet<SymbolId>,
    /// Triggerable literals a step of this event newly forces somewhere.
    trigger_writes: BTreeSet<SymbolId>,
    /// Indices of dependencies whose machines this event steps.
    machines: BTreeSet<usize>,
}

/// Minimal union-find over dense symbol indices.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb)] = ra.min(rb);
        }
    }
}

fn footprint(ctx: &Ctx<'_>, s: SymbolId) -> Footprint {
    let mut reads = BTreeSet::new();
    for lit in [Literal::pos(s), Literal::neg(s)] {
        reads.extend(ctx.compiled.subscriptions(lit));
    }
    let machines: BTreeSet<usize> =
        ctx.deps.iter().enumerate().filter(|(_, d)| d.mentions(s)).map(|(ix, _)| ix).collect();
    // A step of `s` *writes* triggerable literal `t` when it moves some
    // machine from a state where `t` is avoidable into one where every
    // satisfying completion contains `t` — the scheduler reacts by
    // proactively triggering `t` (crate `dist`'s triggering sweep), so
    // the fact is genuinely authored by `s`'s occurrence.
    let mut trigger_writes = BTreeSet::new();
    for &ix in &machines {
        let m = &ctx.compiled.machines[ix];
        for &lt in &m.alphabet {
            let t = lt.symbol();
            if t == s || !lt.is_pos() || !ctx.triggerable(t) {
                continue;
            }
            'states: for q in 0..m.state_count() as u32 {
                let q = event_algebra::StateId(q);
                for ls in [Literal::pos(s), Literal::neg(s)] {
                    let q2 = m.step(q, ls);
                    if q2 != q && !m.requires_event(q, lt) && m.requires_event(q2, lt) {
                        trigger_writes.insert(t);
                        break 'states;
                    }
                }
            }
        }
    }
    Footprint { reads, trigger_writes, machines }
}

pub(crate) fn run(ctx: &Ctx<'_>, bottleneck_shards: usize, report: &mut Report) {
    let symbols: Vec<SymbolId> = ctx.compiled.symbols.iter().copied().collect();
    let n = symbols.len();
    let dense: BTreeMap<SymbolId, usize> =
        symbols.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let prints: Vec<Footprint> = symbols.iter().map(|&s| footprint(ctx, s)).collect();

    let mut commuting: Vec<(SymbolId, SymbolId)> = Vec::new();
    let mut independent: Vec<(SymbolId, SymbolId)> = Vec::new();
    let mut colocate = UnionFind::new(n);
    let mut coupling = UnionFind::new(n);
    // Per colocated pair, the witnessing non-commuting dependency indices
    // (for the WF032 message when sites conflict).
    let mut noncommute_witness: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();

    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (symbols[i], symbols[j]);
            let (fa, fb) = (&prints[i], &prints[j]);
            let coupled = fa.reads.contains(&b) || fb.reads.contains(&a);
            if coupled {
                coupling.union(i, j);
            }
            let noncommuting: Vec<usize> = fa
                .machines
                .intersection(&fb.machines)
                .copied()
                .filter(|&ix| !ctx.compiled.machines[ix].symbols_commute(a, b))
                .collect();
            if noncommuting.is_empty() {
                commuting.push((a, b));
            } else {
                colocate.union(i, j);
                noncommute_witness.insert((i, j), noncommuting.clone());
            }

            // Write-write: both events author the same third fact, with
            // no guard coupling to serialize them.
            let ww: Vec<SymbolId> = fa
                .trigger_writes
                .intersection(&fb.trigger_writes)
                .copied()
                .filter(|&t| t != a && t != b)
                .collect();
            // Read-write: one guard reads a fact the other concurrently
            // authors by triggering.
            let mut rw: Vec<(SymbolId, SymbolId, SymbolId)> = Vec::new();
            for (x, y, fx, fy) in [(a, b, fa, fb), (b, a, fb, fa)] {
                for &t in fy.trigger_writes.intersection(&fx.reads) {
                    if t != x && t != y {
                        rw.push((x, y, t));
                    }
                }
            }
            if !coupled {
                for &t in &ww {
                    let (span_a, label_a) = ctx.event_span(a);
                    let (span_b, label_b) = ctx.event_span(b);
                    let (span_t, label_t) = ctx.event_span(t);
                    report.push(
                        Diagnostic::new(
                            "WF030",
                            Severity::Warning,
                            format!(
                                "events '{}' and '{}' may both trigger '{}' with no \
                                 guard coupling to order them: write-write race on a \
                                 shared literal",
                                ctx.sym_name(a),
                                ctx.sym_name(b),
                                ctx.sym_name(t),
                            ),
                        )
                        .with_span(span_a, label_a)
                        .with_span(span_b, label_b)
                        .with_span(span_t, label_t),
                    );
                }
                for &(x, y, t) in &rw {
                    let (span_x, label_x) = ctx.event_span(x);
                    let (span_y, label_y) = ctx.event_span(y);
                    report.push(
                        Diagnostic::new(
                            "WF031",
                            Severity::Warning,
                            format!(
                                "the guard of '{}' reads '{}' while concurrent event \
                                 '{}' may trigger it: guard read races a writer",
                                ctx.sym_name(x),
                                ctx.sym_name(t),
                                ctx.sym_name(y),
                            ),
                        )
                        .with_span(span_x, label_x)
                        .with_span(span_y, label_y),
                    );
                }
            }

            if noncommuting.is_empty() && !coupled && ww.is_empty() && rw.is_empty() {
                independent.push((a, b));
            }
        }
    }

    // ----- colocation classes -----
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = colocate.find(i);
        members.entry(root).or_default().push(i);
    }
    let mut classes: Vec<ShardClass> = Vec::new();
    let mut class_of_dense: Vec<u32> = vec![0; n];
    for (id, (_, ixs)) in members.iter().enumerate() {
        let events: Vec<SymbolId> = ixs.iter().map(|&i| symbols[i]).collect();
        let sites: BTreeSet<u32> = events.iter().filter_map(|&s| ctx.site_of(s)).collect();
        for &i in ixs {
            class_of_dense[i] = id as u32;
        }
        if sites.len() > 1 {
            // Hard error: the pair order matters (non-commutable) yet the
            // declaration pins members to different sites — no shard
            // assignment can serialize them without violating placement.
            let names: Vec<String> = events.iter().map(|&s| ctx.sym_name(s)).collect();
            let mut deps: BTreeSet<usize> = BTreeSet::new();
            for &i in ixs {
                for &j in ixs {
                    if let Some(ws) = noncommute_witness.get(&canon_ix(i, j)) {
                        deps.extend(ws.iter().copied());
                    }
                }
            }
            let dep_text = deps.iter().map(|&ix| ctx.dep_label(ix)).collect::<Vec<_>>().join(", ");
            let mut d = Diagnostic::new(
                "WF032",
                Severity::Error,
                format!(
                    "events {} are non-commutable (order changes the outcome of {dep_text}) \
                     and must share a shard, but their declarations pin distinct sites \
                     {:?}: this specification cannot be sharded as placed",
                    names.iter().map(|x| format!("'{x}'")).collect::<Vec<_>>().join(", "),
                    sites.iter().collect::<Vec<_>>(),
                ),
            );
            for &s in &events {
                let (span, label) = ctx.event_span(s);
                d = d.with_span(span, label);
            }
            for &ix in &deps {
                d = d.with_span(ctx.dep_span(ix), ctx.dep_label(ix));
            }
            report.push(d);
        }
        classes.push(ShardClass { id: id as u32, events, site: sites.iter().next().copied() });
    }

    // ----- refinement of the Lemma 5 quotient -----
    let refines = (0..n).all(|i| {
        let j = class_of_dense[i] as usize;
        let rep = dense[&classes[j].events[0]];
        classes[j].events.len() == 1 || coupling.find(i) == coupling.find(rep)
    });

    // ----- cross-class proof obligations -----
    let mut obligations: Vec<Obligation> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if class_of_dense[i] == class_of_dense[j] {
                continue;
            }
            let (a, b) = (symbols[i], symbols[j]);
            let coupled = prints[i].reads.contains(&b) || prints[j].reads.contains(&a);
            let kind =
                if coupled { ObligationKind::GuardOrdered } else { ObligationKind::Commutes };
            for &ix in prints[i].machines.intersection(&prints[j].machines) {
                let (left, right) = canonical(a, b);
                obligations.push(Obligation { left, right, dep: ix, kind });
            }
        }
    }

    // ----- bottleneck advisory -----
    for i in 0..n {
        let s = symbols[i];
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        touched.insert(class_of_dense[i]);
        for &t in prints[i].reads.iter().chain(prints[i].trigger_writes.iter()) {
            if let Some(&j) = dense.get(&t) {
                touched.insert(class_of_dense[j]);
            }
        }
        if touched.len() > bottleneck_shards {
            let (span, label) = ctx.event_span(s);
            report.push(
                Diagnostic::new(
                    "WF033",
                    Severity::Info,
                    format!(
                        "event '{}' has footprints in {} shard classes (threshold {}): \
                         a serialization bottleneck for a parallel runtime",
                        ctx.sym_name(s),
                        touched.len(),
                        bottleneck_shards,
                    ),
                )
                .with_span(span, label),
            );
        }
    }

    report.shard_plan = Some(ShardPlan {
        workflow: report.workflow.clone(),
        classes,
        commuting,
        independent,
        obligations,
        refines_site_coupling: refines,
    });
}

fn canon_ix(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}
