//! Pass 3: wait-for analysis over the synthesized guards.
//!
//! Each literal's guard awaits facts about other literals
//! ([`temporal::need_edges`]): promises (`◇l`) and not-yet agreements
//! (`¬l`). Those waits form a directed graph; a strongly connected
//! component of size ≥ 2 (or a self-loop) means the waits chase each
//! other. All-promise components are `◇`-consensus groups — the promise
//! protocol must grant them atomically (`WF020`); all-not-yet components
//! are hold-contention cycles the runtime breaks by priority (`WF021`);
//! mixed components interleave "will occur" with "has not yet occurred"
//! and can deadlock a distributed execution outright (`WF022`).
//!
//! Tarjan's algorithm (iterative) finds components of *any* length — the
//! pairwise scan in `guard::analysis` only sees 2-cycles. A component
//! whose literal set is the exact complement of one already reported is
//! suppressed: it is the mirror image of the same consensus group on the
//! rejecting branch.

use crate::{Ctx, Diagnostic, Report, Severity};
use event_algebra::Literal;
use std::collections::{BTreeMap, BTreeSet};
use temporal::{need_edges, Need};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    Promise,
    NotYet,
}

pub(crate) fn run(ctx: &Ctx<'_>, report: &mut Report) {
    // Node universe: both polarities of every workflow symbol.
    let nodes: Vec<Literal> =
        ctx.compiled.symbols.iter().flat_map(|&s| [Literal::pos(s), Literal::neg(s)]).collect();
    let index: BTreeMap<Literal, usize> = nodes.iter().enumerate().map(|(i, &l)| (l, i)).collect();

    let mut adj: Vec<Vec<(usize, Wait)>> = vec![Vec::new(); nodes.len()];
    for (&lit, &from) in &index {
        let g = ctx.compiled.guard(lit).weaken_sequences();
        for need in need_edges(&g) {
            let (target, wait) = match need {
                Need::Promise(l) => (l, Wait::Promise),
                Need::NotYetAgreement(l) => (l, Wait::NotYet),
                // Occurrence and sequence-head waits are one-directional
                // by construction (the fact precedes the waiter) and
                // cannot close a consensus cycle.
                Need::Occurrence(_) | Need::SequenceHead(_) => continue,
            };
            if let Some(&to) = index.get(&target) {
                if to != from {
                    adj[from].push((to, wait));
                }
            }
        }
    }

    let plain: Vec<Vec<usize>> =
        adj.iter().map(|v| v.iter().map(|&(to, _)| to).collect()).collect();
    let mut reported: BTreeSet<BTreeSet<Literal>> = BTreeSet::new();
    for comp in sccs(&plain) {
        let in_comp: BTreeSet<usize> = comp.iter().copied().collect();
        let cyclic = comp.len() > 1 || comp.iter().any(|&v| plain[v].contains(&v));
        if !cyclic {
            continue;
        }
        let members: BTreeSet<Literal> = comp.iter().map(|&v| nodes[v]).collect();
        let mirror: BTreeSet<Literal> = members.iter().map(|l| l.complement()).collect();
        if reported.contains(&mirror) {
            continue;
        }
        reported.insert(members.clone());

        let mut waits = BTreeSet::new();
        for &v in &comp {
            for &(to, w) in &adj[v] {
                if in_comp.contains(&to) {
                    waits.insert(match w {
                        Wait::Promise => 0u8,
                        Wait::NotYet => 1u8,
                    });
                }
            }
        }
        let names = members.iter().map(|&l| ctx.lit_name(l)).collect::<Vec<_>>().join(", ");
        let sites: BTreeSet<u32> = members.iter().filter_map(|l| ctx.site_of(l.symbol())).collect();
        let site_note = if sites.len() > 1 {
            format!(
                ", spanning sites {}",
                sites.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
            )
        } else {
            String::new()
        };
        let (code, severity, message) = match (waits.contains(&0), waits.contains(&1)) {
            (true, false) => (
                "WF020",
                Severity::Warning,
                format!(
                    "◇-consensus cycle among {{{names}}}{site_note}: each guard awaits a \
                     promise from the next, so the group must reach agreement jointly \
                     before any member can occur"
                ),
            ),
            (false, true) => (
                "WF021",
                Severity::Warning,
                format!(
                    "¬-hold contention cycle among {{{names}}}{site_note}: each guard \
                     requires agreement that the next has not yet occurred; the runtime \
                     must break the tie by priority"
                ),
            ),
            _ => (
                "WF022",
                Severity::Warning,
                format!(
                    "mixed ◇/¬ cycle among {{{names}}}{site_note}: promises and not-yet \
                     holds chase each other — potential distributed deadlock"
                ),
            ),
        };
        let mut d = Diagnostic::new(code, severity, message);
        let mut seen_syms = BTreeSet::new();
        for &l in &members {
            if seen_syms.insert(l.symbol()) {
                let (span, label) = ctx.event_span(l.symbol());
                d = d.with_span(span, label);
            }
        }
        report.push(d);
    }
}

/// Iterative Tarjan SCC over an adjacency list; components are returned
/// in reverse topological order.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let (v, ei) = (frame.0, frame.1);
            if ei == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ei) {
                frame.1 += 1;
                if index[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sccs;

    #[test]
    fn tarjan_finds_long_cycle_and_singletons() {
        // 0 → 1 → 2 → 0 (cycle), 3 → 0, 4 isolated.
        let adj = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let comps = sccs(&adj);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3]));
        assert!(comps.contains(&vec![4]));
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn tarjan_separates_two_cycles() {
        // 0 ↔ 1 and 2 ↔ 3, bridged by 1 → 2.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let comps = sccs(&adj);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
    }

    #[test]
    fn tarjan_handles_self_loop_and_empty() {
        assert!(sccs(&[]).is_empty());
        let comps = sccs(&[vec![0]]);
        assert_eq!(comps, vec![vec![0]]);
    }
}
