//! Pass 1: automaton-based satisfiability core.
//!
//! Per-dependency checks run directly on each residual machine: a machine
//! with no accepting state makes its dependency unsatisfiable on its own
//! (`WF004`); reachable trap states mean the dependency can be violated
//! by a bad prefix, which the runtime scheduler must guard against
//! (`WF005`). Joint properties run on the product machine: the all-`⊤`
//! configuration is reachable iff the dependencies admit a common
//! satisfying execution (`WF001` otherwise), and avoid-literal queries
//! decide per-event deadness (`WF002`) and forcedness (`WF003`). All
//! product queries share one state cache and one [`StateBudget`];
//! exhausting it degrades to an explicit `WF006` instead of hanging.

use crate::{Ctx, Diagnostic, Report, Severity};
use event_algebra::{Literal, ProductMachine, StateBudget};

pub(crate) fn run(ctx: &Ctx<'_>, state_budget: usize, report: &mut Report) {
    let mut any_unsat_alone = false;
    for (ix, m) in ctx.compiled.machines.iter().enumerate() {
        if m.has_accepting() {
            let traps = m.trap_states();
            if !traps.is_empty() {
                report.push(
                    Diagnostic::new(
                        "WF005",
                        Severity::Info,
                        format!(
                            "{} can be violated at runtime: {} of its {} machine states \
                             are traps; the scheduler will refuse transitions entering them",
                            ctx.dep_label(ix),
                            traps.len(),
                            m.state_count(),
                        ),
                    )
                    .with_span(ctx.dep_span(ix), ctx.dep_label(ix)),
                );
            }
        } else {
            any_unsat_alone = true;
            report.push(
                Diagnostic::new(
                    "WF004",
                    Severity::Error,
                    format!(
                        "{} is unsatisfiable on its own: its residual machine \
                         has no accepting state",
                        ctx.dep_label(ix)
                    ),
                )
                .with_span(ctx.dep_span(ix), ctx.dep_label(ix)),
            );
        }
    }
    if ctx.deps.is_empty() {
        return;
    }

    let mut pm = ProductMachine::from_machines(ctx.compiled.machines.clone());
    let mut budget = StateBudget::new(state_budget);

    let joint = pm.reach_accepting(None, &mut budget);
    if joint.cutoff() {
        report.incomplete = true;
    }
    if !joint.found() && !joint.cutoff() {
        report.jointly_contradictory = true;
        // Only report the joint contradiction when every dependency is
        // individually fine — otherwise WF004 already names the culprit.
        if !any_unsat_alone {
            let mut d = Diagnostic::new(
                "WF001",
                Severity::Error,
                format!(
                    "the {} dependencies are jointly contradictory: \
                     no execution satisfies all of them",
                    ctx.deps.len()
                ),
            );
            for ix in 0..ctx.deps.len() {
                d = d.with_span(ctx.dep_span(ix), ctx.dep_label(ix));
            }
            report.push(d);
        }
    }

    // Dead/forced only make sense against a satisfiable conjunction.
    if joint.found() {
        for &sym in &ctx.compiled.symbols {
            let pos = Literal::pos(sym);
            let neg = Literal::neg(sym);
            // dead(e): no satisfying execution contains e, i.e. accepting
            // is unreachable when ē is avoided.
            let dead_q = pm.reach_accepting(Some(neg), &mut budget);
            if dead_q.cutoff() {
                report.incomplete = true;
            } else if !dead_q.found() {
                report.dead.push(pos);
                let (span, label) = ctx.event_span(sym);
                let mut d = Diagnostic::new(
                    "WF002",
                    Severity::Warning,
                    format!(
                        "event '{}' is dead: it occurs in no execution \
                         satisfying all dependencies",
                        ctx.sym_name(sym)
                    ),
                )
                .with_span(span, label);
                for ix in ctx.deps_mentioning_all(&[sym]) {
                    d = d.with_span(ctx.dep_span(ix), ctx.dep_label(ix));
                }
                report.push(d);
                continue;
            }
            // forced(e) = dead(ē): accepting unreachable when e is avoided.
            let forced_q = pm.reach_accepting(Some(pos), &mut budget);
            if forced_q.cutoff() {
                report.incomplete = true;
            } else if !forced_q.found() {
                report.forced.push(pos);
                let (span, label) = ctx.event_span(sym);
                report.push(
                    Diagnostic::new(
                        "WF003",
                        Severity::Info,
                        format!(
                            "event '{}' is forced: it occurs in every execution \
                             satisfying all dependencies",
                            ctx.sym_name(sym)
                        ),
                    )
                    .with_span(span, label),
                );
            }
        }
    }

    report.states_explored = budget.spent();
    if report.incomplete {
        report.push(Diagnostic::new(
            "WF006",
            Severity::Warning,
            format!(
                "state budget of {} product states exhausted after interning {}; \
                 dead/forced verdicts are incomplete — rerun with a larger budget",
                budget.limit(),
                budget.spent()
            ),
        ));
    }
}
