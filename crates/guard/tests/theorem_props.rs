//! Property tests for the paper's guard-calculation results
//! (Section 4.4): Theorems 2 and 4 (independence), Lemma 3 (case split),
//! Lemma 5 (path-based synthesis) and Theorem 6 (correctness of
//! generation), each on randomly generated dependencies.

use event_algebra::{Expr, Literal, SymbolId};
use guard::theorems::{check_lemma3, check_lemma5, check_thm2, check_thm4, check_thm6};
use guard::GuardScope;
use proptest::prelude::*;

fn lit_in(range: std::ops::Range<u32>) -> impl Strategy<Value = Literal> {
    (range, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

fn expr_over(range: std::ops::Range<u32>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => lit_in(range).prop_map(Expr::lit),
        1 => Just(Expr::Top),
        1 => Just(Expr::Zero),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 2..=2).prop_map(Expr::and),
            prop::collection::vec(inner, 2..=2).prop_map(Expr::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 2: `G(D+E,e) = G(D,e)+G(E,e)` for disjoint alphabets.
    #[test]
    fn thm2_or_split(
        d in expr_over(0..2),
        e2 in expr_over(2..4),
        ev in lit_in(0..4),
    ) {
        prop_assert!(check_thm2(&d, &e2, ev));
    }

    /// Theorem 4: `G(D|E,e) = G(D,e)|G(E,e)` for disjoint alphabets.
    #[test]
    fn thm4_and_split(
        d in expr_over(0..2),
        e2 in expr_over(2..4),
        ev in lit_in(0..4),
    ) {
        prop_assert!(check_thm4(&d, &e2, ev));
    }

    /// Lemma 3: `G(D,e) = ¬g|G(D,e) + □g|G(D/g,e)` for any `g ∉ {e,ē}`
    /// (under the sequence-tail side condition — see `check_lemma3`'s
    /// reproduction note).
    #[test]
    fn lemma3_case_split(
        d in expr_over(0..3),
        ev in lit_in(0..3),
        g in lit_in(0..4),
    ) {
        prop_assert!(check_lemma3(&d, ev, g));
    }

    /// Lemma 5: Definition 2 equals the Π(D) path-based synthesis, for
    /// events in `Γ_D` of non-degenerate dependencies (for `e ∉ Γ_D` the
    /// path sum is empty while `G(D,e)` gates on `D`'s satisfiability —
    /// the lemma is about participating events).
    #[test]
    fn lemma5_paths(d in expr_over(0..3), ev in lit_in(0..3)) {
        prop_assume!(!d.is_top() && !d.is_zero());
        prop_assume!(d.mentions(ev.symbol()));
        prop_assert!(check_lemma5(&d, ev));
    }

    /// Theorem 6, single dependency: the guard-generated maximal traces
    /// are exactly the satisfying ones — under both guard scopes.
    /// Degenerate dependencies (`0`, `⊤`, unsatisfiable) are excluded:
    /// a workflow containing `0` admits no correct execution at all, and
    /// the paper's scheduler would reject it statically.
    #[test]
    fn thm6_single_dependency(d in expr_over(0..3)) {
        prop_assume!(!d.is_top() && !d.is_zero() && event_algebra::satisfiable(&d));
        prop_assert!(
            check_thm6(std::slice::from_ref(&d), GuardScope::Mentioning).is_ok(),
            "mentioning scope failed for {d}"
        );
        prop_assert!(
            check_thm6(std::slice::from_ref(&d), GuardScope::All).is_ok(),
            "all scope failed for {d}"
        );
    }

    /// Theorem 6, multi-dependency workflows.
    #[test]
    fn thm6_workflows(
        d1 in expr_over(0..3),
        d2 in expr_over(0..3),
    ) {
        for d in [&d1, &d2] {
            prop_assume!(!d.is_top() && !d.is_zero() && event_algebra::satisfiable(d));
        }
        let w = vec![d1, d2];
        prop_assert!(
            check_thm6(&w, GuardScope::Mentioning).is_ok(),
            "mentioning scope failed for {w:?}"
        );
        prop_assert!(check_thm6(&w, GuardScope::All).is_ok(), "all scope failed for {w:?}");
    }

    /// Theorem 6 with overlapping three-dependency workflows over a
    /// slightly larger alphabet.
    #[test]
    fn thm6_three_dependencies(
        d1 in expr_over(0..2),
        d2 in expr_over(1..3),
        d3 in expr_over(2..4),
    ) {
        for d in [&d1, &d2, &d3] {
            prop_assume!(!d.is_top() && !d.is_zero() && event_algebra::satisfiable(d));
        }
        let w = vec![d1, d2, d3];
        prop_assert!(check_thm6(&w, GuardScope::Mentioning).is_ok(), "failed for {w:?}");
    }
}
