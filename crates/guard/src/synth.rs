//! Guard synthesis `G(D, e)` — Definition 2 (Section 4.2).
//!
//! ```text
//! G(D,e) ≜ (◇(D/e) | ⋀_{f ∈ Γ_{D^e}} ¬f)  +  Σ_{f ∈ Γ_{D^e}} (□f | G(D/f, e))
//! ```
//!
//! where `Γ_{D^e} = Γ_D − {e, ē}`. The first term covers the computations
//! where `e` occurs before any other relevant event (nothing else has
//! happened yet, and the rest of the dependency must still be satisfiable
//! after `e`); each sum term covers the computations where some other
//! relevant event `f` occurred first.
//!
//! The recursion terminates because `D/f` never mentions `f`'s symbol
//! again; it is memoized on the (normalized dependency, event) pair —
//! keyed by hash-consed [`ExprId`] so a memo probe hashes one word
//! instead of a cloned tree — since different interleavings reconverge on
//! the same residuals.

use event_algebra::{normalize, Expr, ExprArena, ExprId, Literal};
use std::collections::{BTreeSet, HashMap};
use temporal::Guard;

/// A memo table for guard synthesis, reusable across events and
/// dependencies of one workflow. Owns an [`ExprArena`]: every residual
/// in the `G(D,e)` recursion is interned once, and the memo is keyed on
/// `(ExprId, Literal)`.
#[derive(Debug, Default)]
pub struct GuardSynth {
    arena: ExprArena,
    memo: HashMap<(ExprId, Literal), Guard>,
}

impl GuardSynth {
    /// Fresh synthesizer.
    pub fn new() -> GuardSynth {
        GuardSynth::default()
    }

    /// `G(D, e)` per Definition 2.
    pub fn guard(&mut self, d: &Expr, e: Literal) -> Guard {
        let raw = self.arena.intern(d);
        let id = self.arena.normalize(raw);
        self.guard_id(id, e)
    }

    fn guard_normal(&mut self, d: &Expr, e: Literal) -> Guard {
        let id = self.arena.intern(d);
        debug_assert!(self.arena.is_normal(id));
        self.guard_id(id, e)
    }

    fn guard_id(&mut self, id: ExprId, e: Literal) -> Guard {
        if let Some(g) = self.memo.get(&(id, e)) {
            return g.clone();
        }
        // Γ_{D^e}: the relevant literals other than e's symbol.
        let gamma: Vec<Literal> =
            self.arena.alphabet(id).into_iter().filter(|l| l.symbol() != e.symbol()).collect();
        // First term: e occurs before any other relevant event.
        let after_e = self.arena.residuate_normal(id, e);
        let mut first = Guard::eventually_expr(&self.arena.expr(after_e));
        for &f in &gamma {
            first = first.and(&Guard::not_yet(f));
        }
        // Sum terms: f occurred first.
        let mut result = first;
        for &f in &gamma {
            let sub_id = self.arena.residuate_normal(id, f);
            let sub = self.guard_id(sub_id, e);
            result = result.or(&Guard::occurred(f).and(&sub));
        }
        self.memo.insert((id, e), result.clone());
        result
    }

    /// `G(D, e)` using the independence fast path: when `D` is a `+` or
    /// `|` of sub-dependencies over pairwise disjoint alphabets, Theorem 2
    /// / Theorem 4 let us synthesize per part and combine — avoiding the
    /// full recursion over `Γ_D` (benchmarked as experiment C6).
    pub fn guard_split(&mut self, d: &Expr, e: Literal) -> Guard {
        let d = normalize(d);
        self.guard_split_normal(&d, e)
    }

    fn guard_split_normal(&mut self, d: &Expr, e: Literal) -> Guard {
        let parts: Option<(&[Expr], bool)> = match &d {
            Expr::Or(v) => Some((v, true)),
            Expr::And(v) => Some((v, false)),
            _ => None,
        };
        if let Some((parts, is_or)) = parts {
            if pairwise_disjoint(parts) {
                // Only the part mentioning e's symbol contributes a
                // non-trivial recursion; the others still contribute
                // their full G (they may not mention e at all but their
                // guard on e is well-defined), so combine all parts.
                let mut acc: Option<Guard> = None;
                for p in parts {
                    let g = self.guard_split_normal(p, e);
                    acc = Some(match acc {
                        None => g,
                        Some(a) => {
                            if is_or {
                                a.or(&g)
                            } else {
                                a.and(&g)
                            }
                        }
                    });
                }
                return acc.unwrap_or_else(Guard::top);
            }
        }
        self.guard_normal(d, e)
    }

    /// Number of memoized entries (for introspection/benches).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

/// `true` if the parts mention pairwise disjoint symbol sets — the side
/// condition `Γ_D ∩ Γ_E = ∅` of Theorems 2 and 4.
pub fn pairwise_disjoint(parts: &[Expr]) -> bool {
    let mut seen: BTreeSet<event_algebra::SymbolId> = BTreeSet::new();
    for p in parts {
        let syms = p.symbols();
        if syms.iter().any(|s| seen.contains(s)) {
            return false;
        }
        seen.extend(syms);
    }
    true
}

/// One-shot convenience for `G(D, e)`.
pub fn guard_of(d: &Expr, e: Literal) -> Guard {
    GuardSynth::new().guard(d, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;
    use temporal::{guards_equivalent_auto, Guard};

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    fn d_arrow(e: Literal, f: Literal) -> Expr {
        Expr::or([Expr::lit(e.complement()), Expr::lit(f)])
    }

    #[test]
    fn example9_constants_and_atoms() {
        let (_, e, _) = setup();
        // 1. G(⊤, e) = ⊤.
        assert!(guard_of(&Expr::Top, e).is_top());
        // 2. G(0, e) = 0.
        assert!(guard_of(&Expr::Zero, e).is_bottom());
        // 3. G(e, e) = ⊤.
        assert!(guard_of(&Expr::lit(e), e).is_top());
        // 4. G(ē, e) = 0.
        assert!(guard_of(&Expr::lit(e.complement()), e).is_bottom());
    }

    #[test]
    fn example9_d_precedes_guards() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let mut s = GuardSynth::new();
        // 5. G(D<, ē) = ⊤.
        assert!(s.guard(&d, e.complement()).is_top());
        // 6. G(D<, e) = ¬f.
        assert_eq!(s.guard(&d, e), Guard::not_yet(f));
        // 7. G(D<, f̄) = ⊤.
        assert!(s.guard(&d, f.complement()).is_top());
        // 8. G(D<, f) = ◇ē + □e.
        let expected = Guard::eventually(e.complement()).or(&Guard::occurred(e));
        assert_eq!(s.guard(&d, f), expected);
    }

    #[test]
    fn example11_mutual_diamond_guards() {
        // D→ = ē + f and its transpose f̄ + e give e's guard ◇f and f's
        // guard ◇e.
        let (_, e, f) = setup();
        let d = d_arrow(e, f);
        let dt = Expr::or([Expr::lit(f.complement()), Expr::lit(e)]);
        let mut s = GuardSynth::new();
        assert_eq!(s.guard(&d, e), Guard::eventually(f));
        assert_eq!(s.guard(&dt, f), Guard::eventually(e));
        // The same-dependency guards on the *other* events:
        // G(D→, f) = ⊤ and G(D→, ē) = ⊤ are NOT generally ⊤ — compute them.
        // f's occurrence always keeps D→ satisfiable: guard is ⊤.
        assert!(s.guard(&d, f).is_top());
    }

    #[test]
    fn guard_on_unmentioned_event_gates_on_dependency_satisfaction() {
        // G(f, e) for e foreign to the dependency "f must occur": the
        // event may occur iff the dependency can still be satisfied, i.e.
        // ◇f (f promised or occurred).
        let (mut t, _, f) = setup();
        let g = t.event("g");
        let synth = guard_of(&Expr::lit(f), g);
        assert_eq!(synth, Guard::eventually(f));
    }

    #[test]
    fn memoization_reuses_residual_guards() {
        let (_, e, f) = setup();
        let mut s = GuardSynth::new();
        let _ = s.guard(&d_precedes(e, f), e);
        let before = s.memo_len();
        let _ = s.guard(&d_precedes(e, f), e);
        assert_eq!(s.memo_len(), before, "second call fully memoized");
    }

    #[test]
    fn split_path_agrees_with_definition2_on_disjoint_or() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let g = t.event("g");
        let h = t.event("h");
        // (ē + f) + (ḡ + h): disjoint alphabets.
        let d = Expr::Or(vec![
            Expr::or([Expr::lit(e.complement()), Expr::lit(f)]),
            Expr::or([Expr::lit(g.complement()), Expr::lit(h)]),
        ]);
        let mut s = GuardSynth::new();
        for lit in [e, f, g, h, e.complement(), g.complement()] {
            let full = s.guard(&d, lit);
            let fast = s.guard_split(&d, lit);
            assert!(guards_equivalent_auto(&full, &fast), "lit {lit}: {full:?} vs {fast:?}");
        }
    }

    #[test]
    fn split_path_agrees_on_disjoint_and() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let g = t.event("g");
        let h = t.event("h");
        let d = Expr::And(vec![
            Expr::or([Expr::lit(e.complement()), Expr::lit(f)]),
            Expr::or([Expr::lit(g.complement()), Expr::lit(h)]),
        ]);
        let mut s = GuardSynth::new();
        for lit in [e, f, g, h] {
            let full = s.guard(&d, lit);
            let fast = s.guard_split(&d, lit);
            assert!(guards_equivalent_auto(&full, &fast), "lit {lit}");
        }
    }

    #[test]
    fn pairwise_disjoint_detection() {
        let (_, e, f) = setup();
        assert!(pairwise_disjoint(&[Expr::lit(e), Expr::lit(f)]));
        assert!(!pairwise_disjoint(&[Expr::lit(e), Expr::lit(e.complement())]));
        assert!(pairwise_disjoint(&[]));
    }

    #[test]
    fn chain_guard_closed_form() {
        // G(e1·e2·e3, e2) = □e1 | ¬e3 | ◇(e3)  (the notice before Lemma 5,
        // with k = 2).
        let mut t = SymbolTable::new();
        let e1 = t.event("e1");
        let e2 = t.event("e2");
        let e3 = t.event("e3");
        let d = Expr::seq([Expr::lit(e1), Expr::lit(e2), Expr::lit(e3)]);
        let g = guard_of(&d, e2);
        let expected = Guard::occurred(e1).and(&Guard::not_yet(e3)).and(&Guard::eventually(e3));
        assert!(guards_equivalent_auto(&g, &expected), "{g:?}");
    }
}
