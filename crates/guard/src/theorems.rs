//! Mechanical checks of the paper's results on guard calculation
//! (Section 4.4): Theorem 2, Lemma 3, Theorem 4, Lemma 5, Definition 4 and
//! Theorem 6. Each function checks one instance exhaustively over the
//! relevant maximal-trace universe; the property-test suites instantiate
//! them with random dependencies.

use crate::paths::guard_via_paths;
use crate::synth::GuardSynth;
use crate::workflow::{CompiledWorkflow, GuardScope};
use event_algebra::{enumerate_maximal, satisfies, Expr, Literal, SymbolId, Trace};
use temporal::{guards_equivalent, Guard};

fn union_symbols(exprs: &[&Expr], extra: Literal) -> Vec<SymbolId> {
    let mut syms: std::collections::BTreeSet<SymbolId> =
        exprs.iter().flat_map(|e| e.symbols()).collect();
    syms.insert(extra.symbol());
    syms.into_iter().collect()
}

/// Theorem 2: `G(D+E, e) = G(D,e) + G(E,e)` when `Γ_D ∩ Γ_E = ∅`.
pub fn check_thm2(d: &Expr, e2: &Expr, ev: Literal) -> bool {
    if d.symbols().intersection(&e2.symbols()).next().is_some() {
        return true; // side condition unmet: theorem says nothing
    }
    let mut s = GuardSynth::new();
    let lhs = s.guard(&Expr::Or(vec![d.clone(), e2.clone()]), ev);
    let rhs = s.guard(d, ev).or(&s.guard(e2, ev));
    guards_equivalent(&lhs, &rhs, &union_symbols(&[d, e2], ev))
}

/// Theorem 4: `G(D|E, e) = G(D,e) | G(E,e)` when `Γ_D ∩ Γ_E = ∅`.
pub fn check_thm4(d: &Expr, e2: &Expr, ev: Literal) -> bool {
    if d.symbols().intersection(&e2.symbols()).next().is_some() {
        return true;
    }
    let mut s = GuardSynth::new();
    let lhs = s.guard(&Expr::And(vec![d.clone(), e2.clone()]), ev);
    let rhs = s.guard(d, ev).and(&s.guard(e2, ev));
    guards_equivalent(&lhs, &rhs, &union_symbols(&[d, e2], ev))
}

/// `true` if `g`'s symbol never appears in a non-head position of a
/// sequence in (normalized) `d`. Residuation `D/g` captures *g occurred
/// first among D's relevant events*; when `g` may legitimately occur
/// later in a sequence, the case split of Lemma 3 loses those
/// computations — see `check_lemma3`.
pub fn lemma3_applicable(d: &Expr, g: Literal) -> bool {
    fn tails_ok(e: &Expr, sym: event_algebra::SymbolId) -> bool {
        match e {
            Expr::Zero | Expr::Top | Expr::Lit(_) => true,
            Expr::Seq(v) => v.iter().skip(1).all(|p| match p {
                Expr::Lit(l) => l.symbol() != sym,
                _ => true,
            }),
            Expr::Or(v) | Expr::And(v) => v.iter().all(|p| tails_ok(p, sym)),
        }
    }
    tails_ok(&event_algebra::normalize(d), g.symbol())
}

/// Lemma 3: `G(D,e) = ¬g|G(D,e) + □g|G(D/g,e)` for any `g ∉ {e, ē}`.
///
/// **Reproduction note:** the lemma as literally stated fails when `g`
/// can occur in the *tail* of a sequence of `D` (counterexample found by
/// the property tests: `D = ē₂·e₁`, `e = ē₀`, `g = e₁` — the trace
/// `⟨ē₂ e₁ ē₀⟩` satisfies `G(D,ē₀)` with `e₁` occurred, but `D/e₁ = 0`
/// because residuation means "e₁ occurred *first*"). Definition 2's own
/// recursion never exercises that case — it always residuates by the
/// first relevant occurrence — so the lemma is checked under the side
/// condition [`lemma3_applicable`].
pub fn check_lemma3(d: &Expr, ev: Literal, g: Literal) -> bool {
    if g.symbol() == ev.symbol() || !lemma3_applicable(d, g) {
        return true;
    }
    let mut s = GuardSynth::new();
    let lhs = s.guard(d, ev);
    let rhs = Guard::not_yet(g)
        .and(&lhs)
        .or(&Guard::occurred(g).and(&s.guard(&event_algebra::residuate(d, g), ev)));
    let mut syms = union_symbols(&[d], ev);
    if !syms.contains(&g.symbol()) {
        syms.push(g.symbol());
        syms.sort_unstable();
    }
    guards_equivalent(&lhs, &rhs, &syms)
}

/// Lemma 5: Definition 2 equals the path-based synthesis.
pub fn check_lemma5(d: &Expr, ev: Literal) -> bool {
    let mut s = GuardSynth::new();
    let def2 = s.guard(d, ev);
    let via = guard_via_paths(d, ev);
    guards_equivalent(&def2, &via, &union_symbols(&[d], ev))
}

/// Definition 4: workflow `W` *generates* trace `u` iff before each event
/// `u_{j+1} = e`, every in-scope dependency's guard on `e` holds at `j`.
pub fn generates(w: &CompiledWorkflow, u: &Trace) -> bool {
    u.events().iter().enumerate().all(|(j, &ev)| {
        w.per_dependency.get(&ev).map(|deps| deps.iter().all(|(_, g)| g.eval(u, j))).unwrap_or(true)
    })
}

/// Theorem 6 for one workflow: over every maximal trace of the workflow's
/// alphabet, `W generates u ⟺ ∀D ∈ W: u ⊨ D`. Returns the first
/// counterexample if any.
pub fn check_thm6(deps: &[Expr], scope: GuardScope) -> Result<(), Trace> {
    let w = CompiledWorkflow::compile(deps, scope);
    let syms: Vec<SymbolId> = w.symbols.iter().copied().collect();
    for u in enumerate_maximal(&syms) {
        let gen = generates(&w, &u);
        let sat = deps.iter().all(|d| satisfies(&u, d));
        if gen != sat {
            return Err(u);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;

    fn setup4() -> (SymbolTable, [Literal; 4]) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let g = t.event("g");
        let h = t.event("h");
        (t, [e, f, g, h])
    }

    fn d_arrow(a: Literal, b: Literal) -> Expr {
        Expr::or([Expr::lit(a.complement()), Expr::lit(b)])
    }

    fn d_precedes(a: Literal, b: Literal) -> Expr {
        Expr::or([
            Expr::lit(a.complement()),
            Expr::lit(b.complement()),
            Expr::seq([Expr::lit(a), Expr::lit(b)]),
        ])
    }

    #[test]
    fn thm2_on_disjoint_pairs() {
        let (_, [e, f, g, h]) = setup4();
        let d1 = d_arrow(e, f);
        let d2 = d_precedes(g, h);
        for ev in [e, f, g, h, e.complement(), h.complement()] {
            assert!(check_thm2(&d1, &d2, ev), "ev={ev}");
        }
    }

    #[test]
    fn thm4_on_disjoint_pairs() {
        let (_, [e, f, g, h]) = setup4();
        let d1 = d_arrow(e, f);
        let d2 = d_arrow(g, h);
        for ev in [e, f, g, h] {
            assert!(check_thm4(&d1, &d2, ev), "ev={ev}");
        }
    }

    #[test]
    fn lemma3_case_split() {
        let (_, [e, f, g, _]) = setup4();
        let d = d_precedes(e, f);
        for ev in [e, f] {
            for by in [f, f.complement(), g, g.complement(), e] {
                assert!(check_lemma3(&d, ev, by), "ev={ev} g={by}");
            }
        }
    }

    #[test]
    fn lemma5_on_examples() {
        let (_, [e, f, _, _]) = setup4();
        for d in [d_arrow(e, f), d_precedes(e, f)] {
            for ev in [e, f, e.complement(), f.complement()] {
                assert!(check_lemma5(&d, ev), "D={d} ev={ev}");
            }
        }
    }

    #[test]
    fn thm6_single_dependencies() {
        let (_, [e, f, _, _]) = setup4();
        for d in
            [d_arrow(e, f), d_precedes(e, f), Expr::lit(e), Expr::seq([Expr::lit(e), Expr::lit(f)])]
        {
            assert!(check_thm6(std::slice::from_ref(&d), GuardScope::Mentioning).is_ok(), "D={d}");
            assert!(check_thm6(std::slice::from_ref(&d), GuardScope::All).is_ok(), "D={d}");
        }
    }

    #[test]
    fn thm6_multi_dependency_workflows() {
        let (_, [e, f, g, _]) = setup4();
        let workflows: Vec<Vec<Expr>> = vec![
            vec![d_arrow(e, f), d_precedes(f, g)],
            vec![d_arrow(e, f), d_arrow(f, e)], // Example 11's cycle
            vec![d_precedes(e, f), d_precedes(f, g)],
            vec![Expr::lit(e), d_arrow(e, f)],
        ];
        for w in workflows {
            assert!(check_thm6(&w, GuardScope::Mentioning).is_ok(), "W={w:?}");
            assert!(check_thm6(&w, GuardScope::All).is_ok(), "W={w:?}");
        }
    }

    #[test]
    fn thm6_travel_workflow() {
        // Example 4's three dependencies, checked exhaustively over the
        // 5-symbol maximal universe (3840 traces).
        let mut t = SymbolTable::new();
        let s_buy = t.event("s_buy");
        let c_buy = t.event("c_buy");
        let s_book = t.event("s_book");
        let c_book = t.event("c_book");
        let s_cancel = t.event("s_cancel");
        let deps = vec![
            Expr::or([Expr::lit(s_buy.complement()), Expr::lit(s_book)]),
            Expr::or([
                Expr::lit(c_buy.complement()),
                Expr::seq([Expr::lit(c_book), Expr::lit(c_buy)]),
            ]),
            Expr::or([Expr::lit(c_book.complement()), Expr::lit(c_buy), Expr::lit(s_cancel)]),
        ];
        assert!(check_thm6(&deps, GuardScope::Mentioning).is_ok());
    }

    #[test]
    fn generates_spots_bad_prefix() {
        // In D<'s guards, f must not precede e unless ē is guaranteed:
        // the trace ⟨f e⟩ is not generated.
        let (_, [e, f, _, _]) = setup4();
        let w = CompiledWorkflow::compile(&[d_precedes(e, f)], GuardScope::Mentioning);
        let bad = Trace::new([f, e]).unwrap();
        assert!(!generates(&w, &bad));
        let good = Trace::new([e, f]).unwrap();
        assert!(generates(&w, &good));
    }
}
