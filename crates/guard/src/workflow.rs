//! Workflow-level guard compilation.
//!
//! A workflow `W` is a set of dependencies. The guard on an event `e` due
//! to `W` is the conjunction of the guards due to the dependencies that
//! mention `e`'s symbol (Section 4.2) — dependencies over foreign symbols
//! contribute `⊤` by the independence theorems (Theorems 2/4), which the
//! property tests verify. [`CompiledWorkflow`] is the precompiled artifact
//! the schedulers consume: one guard per literal, per-dependency machines
//! for triggering analysis, and the subscription map that tells each event
//! which other events' announcements it needs.

use crate::synth::GuardSynth;
use event_algebra::{DependencyMachine, Expr, Literal, SymbolId};
use std::collections::{BTreeMap, BTreeSet};
use temporal::Guard;

/// Which dependencies contribute to an event's conjoined guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardScope {
    /// Only dependencies mentioning the event's symbol (the paper's
    /// choice, enabling distribution).
    #[default]
    Mentioning,
    /// Every dependency in the workflow (the literal reading of
    /// Definition 4; used to validate that the restriction is harmless).
    All,
}

/// A workflow compiled into localized event guards.
#[derive(Debug, Clone)]
pub struct CompiledWorkflow {
    /// The dependencies, as given.
    pub dependencies: Vec<Expr>,
    /// Per-literal conjoined guard. Contains an entry for every literal of
    /// every dependency's `Γ_D`.
    pub guards: BTreeMap<Literal, Guard>,
    /// Per-literal, per-dependency guards (for Definition 4 / Theorem 6
    /// checks and for diagnostics).
    pub per_dependency: BTreeMap<Literal, Vec<(usize, Guard)>>,
    /// The residual machine of each dependency (triggering analysis and
    /// the baseline schedulers reuse these).
    pub machines: Vec<DependencyMachine>,
    /// All symbols mentioned by the workflow.
    pub symbols: BTreeSet<SymbolId>,
}

impl CompiledWorkflow {
    /// Compile a workflow: synthesize `G(D, e)` for every dependency `D`
    /// and every literal `e` in scope, and conjoin per literal.
    pub fn compile(dependencies: &[Expr], scope: GuardScope) -> CompiledWorkflow {
        let mut synth = GuardSynth::new();
        let mut symbols = BTreeSet::new();
        for d in dependencies {
            symbols.extend(d.symbols());
        }
        let all_literals: BTreeSet<Literal> =
            symbols.iter().flat_map(|&s| [Literal::pos(s), Literal::neg(s)]).collect();
        let mut guards = BTreeMap::new();
        let mut per_dependency: BTreeMap<Literal, Vec<(usize, Guard)>> = BTreeMap::new();
        for &lit in &all_literals {
            let mut combined = Guard::top();
            let mut per_dep = Vec::new();
            for (ix, d) in dependencies.iter().enumerate() {
                let relevant = match scope {
                    GuardScope::Mentioning => d.mentions(lit.symbol()),
                    GuardScope::All => true,
                };
                if !relevant {
                    continue;
                }
                let g = synth.guard(d, lit);
                combined = combined.and(&g);
                per_dep.push((ix, g));
            }
            guards.insert(lit, combined);
            per_dependency.insert(lit, per_dep);
        }
        // One shared arena for all machine compilations; structurally
        // identical dependencies share a machine.
        let machines = DependencyMachine::compile_all(dependencies);
        CompiledWorkflow {
            dependencies: dependencies.to_vec(),
            guards,
            per_dependency,
            machines,
            symbols,
        }
    }

    /// The conjoined guard on `lit` (`⊤` for literals outside the
    /// workflow's alphabet).
    pub fn guard(&self, lit: Literal) -> Guard {
        self.guards.get(&lit).cloned().unwrap_or_else(Guard::top)
    }

    /// Borrowed view of the conjoined guard on `lit`; `None` means the
    /// literal is outside the workflow's alphabet and its guard is `⊤`.
    /// The online monitor evaluates guards on every gated firing, where
    /// the owned clone [`CompiledWorkflow::guard`] hands out (a vector
    /// of conjuncts, each holding maps and sequence sets) would dominate
    /// the whole check.
    pub fn guard_ref(&self, lit: Literal) -> Option<&Guard> {
        self.guards.get(&lit)
    }

    /// The guard of `lit` due to dependency `ix` alone (`⊤` if that
    /// dependency is out of scope for `lit`).
    pub fn guard_due_to(&self, lit: Literal, ix: usize) -> Guard {
        self.per_dependency
            .get(&lit)
            .and_then(|v| v.iter().find(|(i, _)| *i == ix))
            .map(|(_, g)| g.clone())
            .unwrap_or_else(Guard::top)
    }

    /// The symbols whose announcements `lit`'s actor must subscribe to:
    /// every symbol its guard mentions (excluding its own).
    pub fn subscriptions(&self, lit: Literal) -> BTreeSet<SymbolId> {
        let mut s = self.guard(lit).symbols();
        s.remove(&lit.symbol());
        s
    }

    /// Total size of all guards (node count of the rendered `T`
    /// expressions) — the size metric for experiment C5.
    pub fn total_guard_size(&self) -> usize {
        self.guards.values().map(|g| g.to_texpr().node_count()).sum()
    }

    /// The largest single event's guard (node count) — what one actor
    /// actually stores and evaluates locally.
    pub fn max_guard_size(&self) -> usize {
        self.guards.values().map(|g| g.to_texpr().node_count()).max().unwrap_or(0)
    }

    /// Total automata size (state count across dependency machines).
    pub fn total_machine_states(&self) -> usize {
        self.machines.iter().map(DependencyMachine::state_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;
    use temporal::guards_equivalent_auto;

    fn travel() -> (SymbolTable, Vec<Expr>) {
        // Example 4: (1) s̄_buy + s_book, (2) c̄_buy + c_book·c_buy,
        // (3) c̄_book + c_buy + s_cancel.
        let mut t = SymbolTable::new();
        let s_buy = t.event("s_buy");
        let c_buy = t.event("c_buy");
        let s_book = t.event("s_book");
        let c_book = t.event("c_book");
        let s_cancel = t.event("s_cancel");
        let d1 = Expr::or([Expr::lit(s_buy.complement()), Expr::lit(s_book)]);
        let d2 = Expr::or([
            Expr::lit(c_buy.complement()),
            Expr::seq([Expr::lit(c_book), Expr::lit(c_buy)]),
        ]);
        let d3 = Expr::or([Expr::lit(c_book.complement()), Expr::lit(c_buy), Expr::lit(s_cancel)]);
        (t, vec![d1, d2, d3])
    }

    #[test]
    fn compiles_travel_workflow() {
        let (mut t, deps) = travel();
        let w = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        assert_eq!(w.symbols.len(), 5);
        assert_eq!(w.guards.len(), 10);
        assert_eq!(w.machines.len(), 3);
        // c_buy is mentioned by d2 and d3: its guard conjoins both.
        let c_buy = t.event("c_buy");
        assert_eq!(w.per_dependency[&c_buy].len(), 2);
        // s_buy is mentioned only by d1.
        let s_buy = t.event("s_buy");
        assert_eq!(w.per_dependency[&s_buy].len(), 1);
    }

    #[test]
    fn guard_of_foreign_literal_is_top() {
        let (_, deps) = travel();
        let w = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        let foreign = Literal::pos(SymbolId(99));
        assert!(w.guard(foreign).is_top());
        assert!(w.subscriptions(foreign).is_empty());
    }

    #[test]
    fn mentioning_scope_matches_all_scope_semantically_on_guards_product() {
        // For each literal, conjoining over mentioning deps differs from
        // conjoining over all deps only by guards of foreign deps — and a
        // trace generated under one is generated under the other exactly
        // when it satisfies the workflow (checked in the theorem tests).
        // Here we sanity-check that both compile and foreign-dep guards
        // are not trivially ⊤ (they gate on dependency satisfaction).
        let (mut t, deps) = travel();
        let w_all = CompiledWorkflow::compile(&deps, GuardScope::All);
        let s_cancel = t.event("s_cancel");
        // d1 does not mention s_cancel; under All scope it contributes a
        // guard gating on d1's eventual satisfaction.
        let g = w_all.guard_due_to(s_cancel, 0);
        assert!(!g.is_bottom());
    }

    #[test]
    fn subscriptions_cover_guard_symbols() {
        let (mut t, deps) = travel();
        let w = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        let c_buy = t.event("c_buy");
        let subs = w.subscriptions(c_buy);
        assert!(!subs.contains(&c_buy.symbol()));
        // c_buy's guard involves c_book (ordering) and s_cancel (dep 3).
        let c_book = t.event("c_book");
        assert!(subs.contains(&c_book.symbol()), "{subs:?}");
    }

    #[test]
    fn klein_arrow_guard_in_workflow() {
        // Single dependency D→: guard of e must be ◇f (cf. Example 11).
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let d = Expr::or([Expr::lit(e.complement()), Expr::lit(f)]);
        let w = CompiledWorkflow::compile(std::slice::from_ref(&d), GuardScope::Mentioning);
        assert_eq!(w.guard(e), Guard::eventually(f));
        assert!(w.guard(f).is_top());
    }

    #[test]
    fn conjoined_guard_equals_product_of_per_dep_guards() {
        let (_, deps) = travel();
        let w = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        for (lit, per_dep) in &w.per_dependency {
            let product = per_dep.iter().fold(Guard::top(), |acc, (_, g)| acc.and(g));
            assert!(guards_equivalent_auto(&product, &w.guard(*lit)), "literal {lit}");
        }
    }

    #[test]
    fn size_metrics_are_positive() {
        let (_, deps) = travel();
        let w = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        assert!(w.total_guard_size() > 0);
        assert!(w.total_machine_states() > deps.len());
    }
}
