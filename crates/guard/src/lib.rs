//! Guard synthesis: compiling declarative dependencies into localized
//! temporal guards on events (Section 4 of Singh, ICDE 1996).
//!
//! - [`GuardSynth`] / [`guard_of`] — Definition 2, with memoization and
//!   the Theorem-2/4 independence fast path;
//! - [`paths_to_top`], [`path_guard`], [`guard_via_paths`] — `Π(D)` and
//!   Lemma 5's path-based synthesis;
//! - [`CompiledWorkflow`] — the precompiled per-event guard table a
//!   scheduler (distributed or centralized) consumes;
//! - [`theorems`] — mechanical checks of Theorems 2/4/6 and Lemmas 3/5,
//!   used by the property-test suites.

#![warn(missing_docs)]

mod analysis;
mod paths;
mod synth;
pub mod theorems;
mod workflow;

pub use analysis::{analyze, analyze_with_budget, Analysis, DEFAULT_STATE_BUDGET};
pub use paths::{guard_via_paths, path_guard, paths_to_top};
pub use synth::{guard_of, pairwise_disjoint, GuardSynth};
pub use workflow::{CompiledWorkflow, GuardScope};
