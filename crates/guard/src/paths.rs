//! `Π(D)` path enumeration and path-based guard synthesis
//! (Definition 3, Lemma 5).
//!
//! `Π(D)` is the set of event sequences `ρ = e₁…eₙ` over `Γ_D` (pairwise
//! distinct symbols) with `((D/e₁)/…)/eₙ = ⊤`. Lemma 5 states that
//! Definition 2's guard equals the sum over paths containing `e` of the
//! closed-form sequence guard
//!
//! ```text
//! G(e₁…e_k…e_n, e_k) = □e₁|…|□e_{k-1} | ¬e_{k+1}|…|¬e_n | ◇(e_{k+1}·…·e_n)
//! ```
//!
//! This module implements both sides; the property test equating them with
//! Definition 2 is the mechanical proof of Lemma 5 over small alphabets.

use event_algebra::{normalize, residuate, Expr, Literal, Trace};
use temporal::Guard;

/// Enumerate `Π(D)`: all residual paths from `D` to `⊤` over `Γ_D`.
///
/// Returned traces use each symbol at most once; events outside `Γ_D` are
/// irrelevant (they self-loop, rule R6) and are not included.
pub fn paths_to_top(d: &Expr) -> Vec<Trace> {
    let d = normalize(d);
    // Paths range over all of Γ_D's symbols, each used at most once —
    // including events the current residual no longer mentions (they
    // self-loop by R6 but still extend the sequence, e.g. ⟨f̄ e⟩ ∈ Π(D<)).
    let syms: Vec<event_algebra::SymbolId> = d.symbols().into_iter().collect();
    let mut out = Vec::new();
    let mut current: Vec<Literal> = Vec::new();
    let mut used = vec![false; syms.len()];
    fn go(
        state: &Expr,
        syms: &[event_algebra::SymbolId],
        used: &mut Vec<bool>,
        current: &mut Vec<Literal>,
        out: &mut Vec<Trace>,
    ) {
        if state.is_zero() {
            return;
        }
        if state.is_top() {
            out.push(Trace::new(current.iter().copied()).expect("distinct by construction"));
        }
        for i in 0..syms.len() {
            if used[i] {
                continue;
            }
            used[i] = true;
            for lit in [Literal::pos(syms[i]), Literal::neg(syms[i])] {
                let next = residuate(state, lit);
                current.push(lit);
                go(&next, syms, used, current, out);
                current.pop();
            }
            used[i] = false;
        }
    }
    go(&d, &syms, &mut used, &mut current, &mut out);
    out
}

/// The closed-form guard of event `path[k]` within the pure sequence
/// dependency `path[0]·…·path[n-1]` (0-indexed `k`).
pub fn path_guard(path: &Trace, k: usize) -> Guard {
    let events = path.events();
    assert!(k < events.len(), "position out of range");
    let mut g = Guard::top();
    for &before in &events[..k] {
        g = g.and(&Guard::occurred(before));
    }
    let after = &events[k + 1..];
    for &later in after {
        g = g.and(&Guard::not_yet(later));
    }
    if !after.is_empty() {
        let seq = Expr::seq(after.iter().map(|&l| Expr::lit(l)));
        g = g.and(&Guard::eventually_expr(&seq));
    }
    g
}

/// Lemma 5's right-hand side: the sum over all `ρ ∈ Π(D)` containing `e`
/// of the path guard at `e`'s position.
pub fn guard_via_paths(d: &Expr, e: Literal) -> Guard {
    let mut g = Guard::bottom();
    for path in paths_to_top(d) {
        for (k, &l) in path.events().iter().enumerate() {
            if l == e {
                g = g.or(&path_guard(&path, k));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GuardSynth;
    use event_algebra::SymbolTable;
    use temporal::guards_equivalent_auto;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    #[test]
    fn paths_of_single_atom() {
        let (_, e, _) = setup();
        let paths = paths_to_top(&Expr::lit(e));
        // Only ⟨e⟩ drives the atom to ⊤.
        assert_eq!(paths, vec![Trace::new([e]).unwrap()]);
    }

    #[test]
    fn paths_of_d_precedes_end_satisfied() {
        use event_algebra::{residuate_trace, satisfies};
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let paths = paths_to_top(&d);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(residuate_trace(&d, p).is_top(), "{p}");
            assert!(satisfies(p, &d), "{p}");
        }
        // ⟨f e⟩ is not a path (violates), ⟨e f⟩ is.
        assert!(paths.contains(&Trace::new([e, f]).unwrap()));
        assert!(!paths.contains(&Trace::new([f, e]).unwrap()));
    }

    #[test]
    fn paths_of_zero_and_top() {
        assert!(paths_to_top(&Expr::Zero).is_empty());
        // ⊤ is satisfied by the empty path.
        assert_eq!(paths_to_top(&Expr::Top), vec![Trace::empty()]);
    }

    #[test]
    fn path_guard_closed_form() {
        let mut t = SymbolTable::new();
        let a = t.event("a");
        let b = t.event("b");
        let c = t.event("c");
        let p = Trace::new([a, b, c]).unwrap();
        // Guard of b: □a | ¬c | ◇c.
        let g = path_guard(&p, 1);
        let expected = Guard::occurred(a).and(&Guard::not_yet(c)).and(&Guard::eventually(c));
        assert!(guards_equivalent_auto(&g, &expected));
        // Guard of the last event: everything before occurred.
        let g_last = path_guard(&p, 2);
        let exp_last = Guard::occurred(a).and(&Guard::occurred(b));
        assert!(guards_equivalent_auto(&g_last, &exp_last));
    }

    #[test]
    fn lemma5_on_paper_dependencies() {
        let (_, e, f) = setup();
        let d_arrow = Expr::or([Expr::lit(e.complement()), Expr::lit(f)]);
        let mut s = GuardSynth::new();
        for d in [d_precedes(e, f), d_arrow] {
            for lit in [e, e.complement(), f, f.complement()] {
                let def2 = s.guard(&d, lit);
                let via = guard_via_paths(&d, lit);
                assert!(guards_equivalent_auto(&def2, &via), "D={d} e={lit}: {def2:?} vs {via:?}");
            }
        }
    }

    #[test]
    fn lemma5_on_chain() {
        let mut t = SymbolTable::new();
        let lits: Vec<Literal> = ["a", "b", "c"].iter().map(|n| t.event(n)).collect();
        let d = Expr::seq(lits.iter().map(|&l| Expr::lit(l)));
        let mut s = GuardSynth::new();
        for &lit in &lits {
            let def2 = s.guard(&d, lit);
            let via = guard_via_paths(&d, lit);
            assert!(guards_equivalent_auto(&def2, &via), "e={lit}");
        }
    }

    #[test]
    #[should_panic(expected = "position out of range")]
    fn path_guard_bounds_checked() {
        let (_, e, _) = setup();
        let p = Trace::new([e]).unwrap();
        let _ = path_guard(&p, 1);
    }
}
