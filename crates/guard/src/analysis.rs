//! Static workflow analysis at compilation time.
//!
//! Section 6: "The underlying execution mechanism should provide a
//! consistent view of the temporal order of events. The compilation
//! phase can detect these conditions and add messages to ensure that
//! there are no problems." This module is that compilation phase: it
//! inspects a workflow before execution and reports
//!
//! - **joint contradictions** — the dependencies admit no common
//!   satisfying trace at all (each may be satisfiable alone);
//! - **dead events** — events that can never occur in any satisfying
//!   trace (their guards are `0`; an attempt will be rejected);
//! - **forced events** — events that occur in *every* satisfying trace
//!   (if not triggerable, the workflow's liveness depends on their agent
//!   attempting them);
//! - **consensus pairs** — events whose guards mutually require each
//!   other's eventual occurrence (`◇`-cycles, Example 11): the promise
//!   protocol will be exercised;
//! - **agreement pairs** — events whose guards contain `¬` constraints
//!   on each other: the not-yet agreement with its priority rule will be
//!   exercised (potential hold contention).
//!
//! The joint quantifications (contradiction, dead, forced) run as
//! budgeted reachability over the product of the per-dependency
//! [`DependencyMachine`](event_algebra::DependencyMachine)s — see
//! [`event_algebra::ProductMachine`] — instead of enumerating residual
//! expression sets: the machines collapse equivalent residuals into
//! shared states, the product's intern table is reused across all 2·|Σ|+1
//! queries, and an explicit state budget turns pathological workflows
//! into a reported cutoff rather than a hang. Cycle detection here stays
//! deliberately pairwise; the `analyze` crate layers arbitrary-length
//! cycle detection (strongly connected components of the need graph) and
//! structured diagnostics on top of this module.

use crate::workflow::{CompiledWorkflow, GuardScope};
use event_algebra::{Expr, Literal, ProductMachine, Reach, StateBudget};
use std::collections::BTreeSet;
use temporal::{needs, Need};

/// Default product-state budget for [`analyze`]. Generous: typical
/// workflow products stay well under a thousand states.
pub const DEFAULT_STATE_BUDGET: usize = 1 << 20;

/// The report produced by [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// No trace satisfies all dependencies together.
    pub jointly_contradictory: bool,
    /// Events that can never occur in a satisfying execution.
    pub dead: Vec<Literal>,
    /// Events that occur in every satisfying execution.
    pub forced: Vec<Literal>,
    /// Pairs whose guards mutually require `◇` of each other
    /// (Example 11's consensus requirement).
    pub consensus_pairs: Vec<(Literal, Literal)>,
    /// Pairs `(e, f)` where `e`'s guard needs agreement that `f` has not
    /// yet occurred *and* vice versa (direct hold cycles; the runtime
    /// breaks them by symbol priority).
    pub agreement_cycles: Vec<(Literal, Literal)>,
    /// `true` when the state budget ran out before every reachability
    /// query completed: the verdicts above are sound where given, but
    /// some dead/forced classifications may be missing and
    /// `jointly_contradictory` may be a false negative.
    pub incomplete: bool,
    /// Product states explored (diagnostic metadata).
    pub states_explored: usize,
}

impl Analysis {
    /// `true` when nothing problematic was found (and the analysis ran to
    /// completion).
    pub fn is_clean(&self) -> bool {
        !self.jointly_contradictory
            && self.dead.is_empty()
            && self.consensus_pairs.is_empty()
            && self.agreement_cycles.is_empty()
            && !self.incomplete
    }
}

/// Analyze a workflow's dependencies at compile time with the default
/// state budget.
pub fn analyze(dependencies: &[Expr]) -> Analysis {
    analyze_with_budget(dependencies, DEFAULT_STATE_BUDGET)
}

/// Analyze with an explicit product-state budget shared across all
/// reachability queries.
pub fn analyze_with_budget(dependencies: &[Expr], state_budget: usize) -> Analysis {
    let compiled = CompiledWorkflow::compile(dependencies, GuardScope::Mentioning);
    let mut report = Analysis::default();

    let mut product = ProductMachine::from_machines(compiled.machines.clone());
    let mut budget = StateBudget::new(state_budget);

    match product.reach_accepting(None, &mut budget) {
        Reach::Yes => {}
        Reach::No => report.jointly_contradictory = true,
        Reach::Cutoff => report.incomplete = true,
    }

    // Dead / forced events: quantify over joint completions. A satisfying
    // trace containing `lit` exists iff acceptance is reachable avoiding
    // `lit`'s complement; one containing `lit`'s complement exists iff it
    // is reachable avoiding `lit` itself.
    let mut literals: BTreeSet<Literal> = BTreeSet::new();
    for s in &compiled.symbols {
        literals.insert(Literal::pos(*s));
        literals.insert(Literal::neg(*s));
    }
    if !report.jointly_contradictory {
        for &lit in &literals {
            match product.reach_accepting(Some(lit.complement()), &mut budget) {
                Reach::Yes => {}
                Reach::No => {
                    report.dead.push(lit);
                    continue;
                }
                Reach::Cutoff => {
                    report.incomplete = true;
                    continue;
                }
            }
            match product.reach_accepting(Some(lit), &mut budget) {
                Reach::No => report.forced.push(lit),
                Reach::Cutoff => report.incomplete = true,
                Reach::Yes => {}
            }
        }
    }
    report.states_explored = product.interned_states();

    // Consensus / agreement pairs from the compiled guards' needs.
    let mut promise_needs: Vec<(Literal, Literal)> = Vec::new();
    let mut notyet_needs: Vec<(Literal, Literal)> = Vec::new();
    for &lit in &literals {
        let g = compiled.guard(lit).weaken_sequences();
        for conj in needs(&g) {
            for n in conj {
                match n {
                    Need::Promise(f) => promise_needs.push((lit, f)),
                    Need::NotYetAgreement(f) => notyet_needs.push((lit, f)),
                    _ => {}
                }
            }
        }
    }
    promise_needs.sort();
    promise_needs.dedup();
    notyet_needs.sort();
    notyet_needs.dedup();
    for &(a, b) in &promise_needs {
        if a < b && promise_needs.binary_search(&(b, a)).is_ok() {
            report.consensus_pairs.push((a, b));
        }
    }
    // A hold cycle is literal-exact: `a` waits for agreement that `b` has
    // not yet occurred while `b` waits on `a` — comparing symbols alone
    // would conflate `¬f` with `¬f̄`, which constrain different runs.
    for &(a, b) in &notyet_needs {
        if a < b && notyet_needs.binary_search(&(b, a)).is_ok() {
            report.agreement_cycles.push((a, b));
        }
    }
    report.consensus_pairs.sort();
    report.consensus_pairs.dedup();
    report.agreement_cycles.sort();
    report.agreement_cycles.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{parse_expr, SymbolId, SymbolTable};

    #[test]
    fn clean_workflow_is_clean() {
        let mut t = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut t).unwrap();
        let a = analyze(&[d]);
        assert!(!a.jointly_contradictory);
        assert!(a.dead.is_empty(), "{a:?}");
        assert!(a.forced.is_empty(), "{a:?}");
        assert!(!a.incomplete);
    }

    #[test]
    fn detects_joint_contradiction() {
        // d1 requires e and f (conjunction with e·f order); d2 requires
        // f before e — individually satisfiable, jointly impossible.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("e.f", &mut t).unwrap();
        let d2 = parse_expr("f.e", &mut t).unwrap();
        assert!(event_algebra::satisfiable(&d1));
        assert!(event_algebra::satisfiable(&d2));
        let a = analyze(&[d1, d2]);
        assert!(a.jointly_contradictory, "{a:?}");
    }

    #[test]
    fn detects_dead_and_forced_events() {
        let mut t = SymbolTable::new();
        // e must never occur; f must occur.
        let d1 = parse_expr("~e", &mut t).unwrap();
        let d2 = parse_expr("f", &mut t).unwrap();
        let e = t.event("e");
        let f = t.event("f");
        let a = analyze(&[d1, d2]);
        assert!(a.dead.contains(&e), "{a:?}");
        assert!(a.forced.contains(&e.complement()), "{a:?}");
        assert!(a.forced.contains(&f), "{a:?}");
        assert!(a.dead.contains(&f.complement()), "{a:?}");
    }

    #[test]
    fn detects_consensus_pairs() {
        // Example 11: D→ and its transpose give e ↦ ◇f and f ↦ ◇e.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut t).unwrap();
        let d2 = parse_expr("~f + e", &mut t).unwrap();
        let e = t.event("e");
        let f = t.event("f");
        let a = analyze(&[d1, d2]);
        assert!(
            a.consensus_pairs.contains(&(e, f)) || a.consensus_pairs.contains(&(f, e)),
            "{a:?}"
        );
    }

    #[test]
    fn detects_agreement_cycles() {
        // Ground mutual exclusion (Example 13 for one iteration pair, in
        // both directions): each enter's guard carries ¬ on the other
        // enter — the not-yet agreement with priority will be exercised.
        let mut t = SymbolTable::new();
        let d12 = parse_expr("b2.b1 + ~e1 + ~b2 + e1.b2", &mut t).unwrap();
        let d21 = parse_expr("b1.b2 + ~e2 + ~b1 + e2.b1", &mut t).unwrap();
        let a = analyze(&[d12, d21]);
        assert!(!a.jointly_contradictory);
        assert!(!a.agreement_cycles.is_empty(), "{a:?}");
    }

    #[test]
    fn opposing_precedences_need_promises_not_agreements() {
        // e < f plus f < e: jointly "not both occur". The conjoined
        // guards strengthen ¬f ∧ (◇ē+□e)-style into promises of the
        // complements, so no agreement cycle is reported.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + ~f + e.f", &mut t).unwrap();
        let d2 = parse_expr("~f + ~e + f.e", &mut t).unwrap();
        let a = analyze(&[d1, d2]);
        assert!(!a.jointly_contradictory);
        assert!(a.agreement_cycles.is_empty(), "{a:?}");
        assert!(a.dead.is_empty(), "either may occur (just not both): {a:?}");
    }

    #[test]
    fn contradictory_random_pair_from_the_wild() {
        // The pair that motivated the dead-ness fix: dep1 requires e2's
        // occurrence, dep2 requires ē3·ē2 ordering — jointly they still
        // admit completions; analysis agrees with exhaustive search.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("e1 | e2.e1 | (e0 + ~e0)", &mut t).unwrap();
        let d2 = parse_expr("~e3.~e2", &mut t).unwrap();
        let a = analyze(&[d1.clone(), d2.clone()]);
        let syms: Vec<SymbolId> = d1.symbols().union(&d2.symbols()).copied().collect();
        let brute = event_algebra::enumerate_maximal(&syms)
            .iter()
            .any(|u| event_algebra::satisfies(u, &d1) && event_algebra::satisfies(u, &d2));
        assert_eq!(!a.jointly_contradictory, brute);
    }

    #[test]
    fn reported_pairs_are_sorted_and_globally_deduplicated() {
        // Three arrow cycles sharing events produce pair lists whose
        // duplicates are not adjacent — the old `dedup()`-only cleanup
        // left repeats behind.
        let mut t = SymbolTable::new();
        let srcs = ["~a + b", "~b + a", "~a + c", "~c + a", "~b + c", "~c + b"];
        let ds: Vec<Expr> = srcs.iter().map(|s| parse_expr(s, &mut t).unwrap()).collect();
        let a = analyze(&ds);
        let mut sorted = a.consensus_pairs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(a.consensus_pairs, sorted, "sorted and unique: {a:?}");
        assert!(!a.consensus_pairs.is_empty());
    }

    #[test]
    fn tight_budget_reports_incomplete_instead_of_hanging() {
        let mut t = SymbolTable::new();
        let srcs = ["~e1 + e2", "~e2 + e3", "~e3 + e4", "~e4 + e1"];
        let ds: Vec<Expr> = srcs.iter().map(|s| parse_expr(s, &mut t).unwrap()).collect();
        let a = analyze_with_budget(&ds, 3);
        assert!(a.incomplete, "{a:?}");
        assert!(!a.is_clean());
    }

    #[test]
    fn ten_symbol_chain_completes_within_budget() {
        // A 9-dependency arrow chain over 10 symbols: the residual-set
        // enumeration the machines replaced blows up here; the product
        // stays small because equivalent residuals share states.
        let mut t = SymbolTable::new();
        let srcs: Vec<String> = (0..9).map(|i| format!("~e{} + e{}", i, i + 1)).collect();
        let ds: Vec<Expr> = srcs.iter().map(|s| parse_expr(s, &mut t).unwrap()).collect();
        let a = analyze(&ds);
        assert!(!a.incomplete, "explored {} states", a.states_explored);
        assert!(!a.jointly_contradictory);
        assert!(a.dead.is_empty(), "{a:?}");
        assert!(a.states_explored <= DEFAULT_STATE_BUDGET);
    }
}
