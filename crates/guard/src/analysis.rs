//! Static workflow analysis at compilation time.
//!
//! Section 6: "The underlying execution mechanism should provide a
//! consistent view of the temporal order of events. The compilation
//! phase can detect these conditions and add messages to ensure that
//! there are no problems." This module is that compilation phase: it
//! inspects a workflow before execution and reports
//!
//! - **joint contradictions** — the dependencies admit no common
//!   satisfying trace at all (each may be satisfiable alone);
//! - **dead events** — events that can never occur in any satisfying
//!   trace (their guards are `0`; an attempt will be rejected);
//! - **forced events** — events that occur in *every* satisfying trace
//!   (if not triggerable, the workflow's liveness depends on their agent
//!   attempting them);
//! - **consensus pairs** — events whose guards mutually require each
//!   other's eventual occurrence (`◇`-cycles, Example 11): the promise
//!   protocol will be exercised;
//! - **agreement pairs** — events whose guards contain `¬` constraints
//!   on each other: the not-yet agreement with its priority rule will be
//!   exercised (potential hold contention).

use crate::workflow::{CompiledWorkflow, GuardScope};
use event_algebra::{normalize, residuate, Expr, Literal, SymbolId};
use std::collections::{BTreeSet, HashMap};
use temporal::{needs, Need};

/// The report produced by [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// No trace satisfies all dependencies together.
    pub jointly_contradictory: bool,
    /// Events that can never occur in a satisfying execution.
    pub dead: Vec<Literal>,
    /// Events that occur in every satisfying execution.
    pub forced: Vec<Literal>,
    /// Pairs whose guards mutually require `◇` of each other
    /// (Example 11's consensus requirement).
    pub consensus_pairs: Vec<(Literal, Literal)>,
    /// Pairs `(e, f)` where `e`'s guard needs agreement that `f` has not
    /// yet occurred *and* vice versa (direct hold cycles; the runtime
    /// breaks them by symbol priority).
    pub agreement_cycles: Vec<(Literal, Literal)>,
}

impl Analysis {
    /// `true` when nothing problematic was found.
    pub fn is_clean(&self) -> bool {
        !self.jointly_contradictory
            && self.dead.is_empty()
            && self.consensus_pairs.is_empty()
            && self.agreement_cycles.is_empty()
    }
}

/// Joint satisfiability of a set of residuals: does some maximal
/// completion drive *all* of them to `⊤`? Product search with
/// memoization; exponential in the worst case, fine at workflow sizes.
fn jointly_satisfiable(states: &[Expr], memo: &mut HashMap<Vec<Expr>, bool>) -> bool {
    if states.iter().any(Expr::is_zero) {
        return false;
    }
    if states.iter().all(Expr::is_top) {
        return true;
    }
    if let Some(&r) = memo.get(states) {
        return r;
    }
    let mut syms: BTreeSet<SymbolId> = BTreeSet::new();
    for s in states {
        syms.extend(s.symbols());
    }
    let mut found = false;
    'outer: for &sym in &syms {
        for lit in [Literal::pos(sym), Literal::neg(sym)] {
            let next: Vec<Expr> = states.iter().map(|s| residuate(s, lit)).collect();
            if jointly_satisfiable(&next, memo) {
                found = true;
                break 'outer;
            }
        }
    }
    memo.insert(states.to_vec(), found);
    found
}

/// Like [`jointly_satisfiable`] but with one literal forbidden (or, with
/// `forbidden = l`, deciding whether some joint completion avoids `l`).
fn jointly_satisfiable_avoiding(
    states: &[Expr],
    forbidden: Literal,
    memo: &mut HashMap<Vec<Expr>, bool>,
) -> bool {
    if states.iter().any(Expr::is_zero) {
        return false;
    }
    if states.iter().all(Expr::is_top) {
        return true;
    }
    if let Some(&r) = memo.get(states) {
        return r;
    }
    let mut syms: BTreeSet<SymbolId> = BTreeSet::new();
    for s in states {
        syms.extend(s.symbols());
    }
    let mut found = false;
    'outer: for &sym in &syms {
        for lit in [Literal::pos(sym), Literal::neg(sym)] {
            if lit == forbidden {
                continue;
            }
            let next: Vec<Expr> = states.iter().map(|s| residuate(s, lit)).collect();
            if jointly_satisfiable_avoiding(&next, forbidden, memo) {
                found = true;
                break 'outer;
            }
        }
    }
    memo.insert(states.to_vec(), found);
    found
}

/// Analyze a workflow's dependencies at compile time.
pub fn analyze(dependencies: &[Expr]) -> Analysis {
    let compiled = CompiledWorkflow::compile(dependencies, GuardScope::Mentioning);
    let states: Vec<Expr> = dependencies.iter().map(normalize).collect();
    let mut report = Analysis::default();

    let mut memo = HashMap::new();
    report.jointly_contradictory = !jointly_satisfiable(&states, &mut memo);

    // Dead / forced events: quantify over joint completions.
    let mut literals: BTreeSet<Literal> = BTreeSet::new();
    for s in &compiled.symbols {
        literals.insert(Literal::pos(*s));
        literals.insert(Literal::neg(*s));
    }
    if !report.jointly_contradictory {
        for &lit in &literals {
            let mut memo_a = HashMap::new();
            // Dead: no joint completion contains lit — equivalently,
            // restricting completions to resolve lit's symbol positively
            // (forbidding the complement) leaves nothing satisfiable.
            if !jointly_satisfiable_avoiding(&states, lit.complement(), &mut memo_a) {
                report.dead.push(lit);
                continue;
            }
            let mut memo_b = HashMap::new();
            if !jointly_satisfiable_avoiding(&states, lit, &mut memo_b) {
                report.forced.push(lit);
            }
        }
    }

    // Consensus / agreement pairs from the compiled guards' needs.
    let mut promise_needs: Vec<(Literal, Literal)> = Vec::new();
    let mut notyet_needs: Vec<(Literal, Literal)> = Vec::new();
    for &lit in &literals {
        let g = compiled.guard(lit).weaken_sequences();
        for conj in needs(&g) {
            for n in conj {
                match n {
                    Need::Promise(f) => promise_needs.push((lit, f)),
                    Need::NotYetAgreement(f) => notyet_needs.push((lit, f)),
                    _ => {}
                }
            }
        }
    }
    for &(a, b) in &promise_needs {
        if a < b && promise_needs.contains(&(b, a)) {
            report.consensus_pairs.push((a, b));
        }
    }
    for &(a, b) in &notyet_needs {
        if a.symbol() < b.symbol() && notyet_needs.iter().any(|&(x, y)| x.symbol() == b.symbol() && y.symbol() == a.symbol()) {
            report.agreement_cycles.push((a, b));
        }
    }
    report.consensus_pairs.dedup();
    report.agreement_cycles.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{parse_expr, SymbolTable};

    #[test]
    fn clean_workflow_is_clean() {
        let mut t = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut t).unwrap();
        let a = analyze(&[d]);
        assert!(!a.jointly_contradictory);
        assert!(a.dead.is_empty(), "{a:?}");
        assert!(a.forced.is_empty(), "{a:?}");
    }

    #[test]
    fn detects_joint_contradiction() {
        // d1 requires e and f (conjunction with e·f order); d2 requires
        // f before e — individually satisfiable, jointly impossible.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("e.f", &mut t).unwrap();
        let d2 = parse_expr("f.e", &mut t).unwrap();
        assert!(event_algebra::satisfiable(&d1));
        assert!(event_algebra::satisfiable(&d2));
        let a = analyze(&[d1, d2]);
        assert!(a.jointly_contradictory, "{a:?}");
    }

    #[test]
    fn detects_dead_and_forced_events() {
        let mut t = SymbolTable::new();
        // e must never occur; f must occur.
        let d1 = parse_expr("~e", &mut t).unwrap();
        let d2 = parse_expr("f", &mut t).unwrap();
        let e = t.event("e");
        let f = t.event("f");
        let a = analyze(&[d1, d2]);
        assert!(a.dead.contains(&e), "{a:?}");
        assert!(a.forced.contains(&e.complement()), "{a:?}");
        assert!(a.forced.contains(&f), "{a:?}");
        assert!(a.dead.contains(&f.complement()), "{a:?}");
    }

    #[test]
    fn detects_consensus_pairs() {
        // Example 11: D→ and its transpose give e ↦ ◇f and f ↦ ◇e.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut t).unwrap();
        let d2 = parse_expr("~f + e", &mut t).unwrap();
        let e = t.event("e");
        let f = t.event("f");
        let a = analyze(&[d1, d2]);
        assert!(
            a.consensus_pairs.contains(&(e, f)) || a.consensus_pairs.contains(&(f, e)),
            "{a:?}"
        );
    }

    #[test]
    fn detects_agreement_cycles() {
        // Ground mutual exclusion (Example 13 for one iteration pair, in
        // both directions): each enter's guard carries ¬ on the other
        // enter — the not-yet agreement with priority will be exercised.
        let mut t = SymbolTable::new();
        let d12 = parse_expr("b2.b1 + ~e1 + ~b2 + e1.b2", &mut t).unwrap();
        let d21 = parse_expr("b1.b2 + ~e2 + ~b1 + e2.b1", &mut t).unwrap();
        let a = analyze(&[d12, d21]);
        assert!(!a.jointly_contradictory);
        assert!(!a.agreement_cycles.is_empty(), "{a:?}");
    }

    #[test]
    fn opposing_precedences_need_promises_not_agreements() {
        // e < f plus f < e: jointly "not both occur". The conjoined
        // guards strengthen ¬f ∧ (◇ē+□e)-style into promises of the
        // complements, so no agreement cycle is reported.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + ~f + e.f", &mut t).unwrap();
        let d2 = parse_expr("~f + ~e + f.e", &mut t).unwrap();
        let a = analyze(&[d1, d2]);
        assert!(!a.jointly_contradictory);
        assert!(a.agreement_cycles.is_empty(), "{a:?}");
        assert!(a.dead.is_empty(), "either may occur (just not both): {a:?}");
    }

    #[test]
    fn contradictory_random_pair_from_the_wild() {
        // The pair that motivated the dead-ness fix: dep1 requires e2's
        // occurrence, dep2 requires ē3·ē2 ordering — jointly they still
        // admit completions; analysis agrees with exhaustive search.
        let mut t = SymbolTable::new();
        let d1 = parse_expr("e1 | e2.e1 | (e0 + ~e0)", &mut t).unwrap();
        let d2 = parse_expr("~e3.~e2", &mut t).unwrap();
        let a = analyze(&[d1.clone(), d2.clone()]);
        let syms: Vec<SymbolId> = d1.symbols().union(&d2.symbols()).copied().collect();
        let brute = event_algebra::enumerate_maximal(&syms)
            .iter()
            .any(|u| event_algebra::satisfies(u, &d1) && event_algebra::satisfies(u, &d2));
        assert_eq!(!a.jointly_contradictory, brute);
    }
}
