//! Experiment C2: "much of the required symbolic reasoning can be
//! precompiled, leading to efficiency at runtime." One-time compilation
//! cost (guard synthesis / automaton construction) versus the per-message
//! runtime cost it buys (constant-time guard reduction / table lookup),
//! as dependency size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_algebra::{residuate, satisfiable, DependencyMachine, Literal, SymbolId};
use guard::{CompiledWorkflow, GuardScope};
use testkit::{chain, klein_pipeline, symbols};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for &n in &[2usize, 4, 6, 8] {
        let (_, syms) = symbols(n);
        let deps = klein_pipeline(&syms);
        group.bench_with_input(BenchmarkId::new("guards", n), &n, |b, _| {
            b.iter(|| CompiledWorkflow::compile(&deps, GuardScope::Mentioning).guards.len())
        });
        group.bench_with_input(BenchmarkId::new("automata", n), &n, |b, _| {
            b.iter(|| {
                deps.iter().map(|d| DependencyMachine::compile(d).state_count()).sum::<usize>()
            })
        });
        let ch = chain(&syms);
        group.bench_with_input(BenchmarkId::new("guards-chain", n), &n, |b, _| {
            b.iter(|| {
                CompiledWorkflow::compile(std::slice::from_ref(&ch), GuardScope::Mentioning)
                    .guards
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    for &n in &[4usize, 8] {
        let (_, syms) = symbols(n);
        let deps = klein_pipeline(&syms);
        let compiled = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        let last = Literal::pos(*syms.last().unwrap());
        let g = compiled.guard(last);
        let fact = Literal::pos(syms[n - 2]);
        // Precompiled guard: one reduction per arriving announcement.
        group.bench_with_input(BenchmarkId::new("guard-reduce", n), &n, |b, _| {
            b.iter(|| g.assume_occurred(fact).holds_now())
        });
        // Automata runtime: one table step per event.
        let machines: Vec<DependencyMachine> =
            deps.iter().map(DependencyMachine::compile).collect();
        group.bench_with_input(BenchmarkId::new("automata-step", n), &n, |b, _| {
            b.iter(|| machines.iter().map(|m| m.step(m.initial, fact).index()).sum::<usize>())
        });
        // Uncompiled baseline: the centralized scheduler's runtime work —
        // residuate every dependency and re-check satisfiability.
        group.bench_with_input(BenchmarkId::new("residuate-and-check", n), &n, |b, _| {
            b.iter(|| deps.iter().map(|d| satisfiable(&residuate(d, fact)) as usize).sum::<usize>())
        });
        let _ = SymbolId(0);
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_runtime);
criterion_main!(benches);
