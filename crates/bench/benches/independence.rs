//! Experiment C6: the Theorem 2/4 independence fast path — synthesizing
//! guards for a `+`/`|` of sub-dependencies over disjoint alphabets by
//! per-part recursion instead of the full Definition 2 recursion over
//! `Γ_D`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_algebra::{Expr, Literal};
use guard::GuardSynth;
use testkit::{disjoint_arrows, symbols};

fn bench_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("independence");
    group.sample_size(20);
    for &pairs in &[2usize, 3, 4] {
        let (_, syms) = symbols(pairs * 2);
        let d = Expr::Or(disjoint_arrows(&syms));
        let ev = Literal::pos(syms[0]);
        group.bench_with_input(BenchmarkId::new("definition2-full", pairs), &pairs, |b, _| {
            b.iter(|| {
                let mut s = GuardSynth::new();
                s.guard(&d, ev).conjuncts().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("thm2-split", pairs), &pairs, |b, _| {
            b.iter(|| {
                let mut s = GuardSynth::new();
                s.guard_split(&d, ev).conjuncts().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_independence);
criterion_main!(benches);
