//! Experiment C4 (wall-clock side): end-to-end scheduling cost as the
//! workflow widens — independent work should scale linearly in total
//! work for every engine, with the distributed engine spreading it.

use baseline::Engine;
use bench::{disjoint_workload, run_central, run_distributed};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(15);
    for &pairs in &[4u32, 16, 32] {
        let w = disjoint_workload(pairs, pairs.min(16));
        group.bench_with_input(BenchmarkId::new("distributed", pairs), &pairs, |b, _| {
            b.iter(|| {
                let r = run_distributed(&w, 1);
                assert!(r.all_satisfied());
                r.duration
            })
        });
        group.bench_with_input(BenchmarkId::new("central-symbolic", pairs), &pairs, |b, _| {
            b.iter(|| {
                let r = run_central(&w, 1, Engine::Symbolic);
                assert!(r.all_satisfied());
                r.duration
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
