//! Hot-path microbenchmarks for the hash-consed expression arena and the
//! compiled guard runtime: interning, residuation, dependency-machine
//! compilation, the per-message FSM step, and the end-to-end simulated
//! schedule under the symbolic vs the compiled dependency runtime.
//!
//! Each group pairs the tree-walking reference implementation ("tree")
//! against the arena/automaton fast path ("arena"/"compiled") so the
//! before/after ratio is measured, not assumed. The offline counterpart
//! (plain `std::time`, no criterion) lives in `src/bin/perfprobe.rs` and
//! produces `BENCH_algebra.json`.

use bench::{pipeline_workload, standard_sim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dist::{run_workflow, DepRuntime, ExecConfig, GuardMode};
use event_algebra::{normalize, residuate, DependencyMachine, Expr, ExprArena, Literal};

/// The normalized pipeline dependencies plus every literal of their joint
/// alphabet — the workload all algebra-level groups share.
fn pipeline_exprs(n: u32) -> (Vec<Expr>, Vec<Literal>) {
    let w = pipeline_workload(n, 1);
    let deps: Vec<Expr> = w.deps.iter().map(normalize).collect();
    let mut lits: Vec<Literal> = deps
        .iter()
        .flat_map(|d| d.symbols())
        .flat_map(|s| [Literal::pos(s), Literal::neg(s)])
        .collect();
    lits.sort();
    lits.dedup();
    (deps, lits)
}

fn bench_intern(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern");
    for &n in &[10u32, 20] {
        let (deps, _) = pipeline_exprs(n);
        group.bench_with_input(BenchmarkId::new("pipeline", n), &n, |b, _| {
            b.iter(|| {
                let mut arena = ExprArena::new();
                let ids: Vec<_> = deps.iter().map(|d| arena.intern(d)).collect();
                (arena.len(), ids.len())
            })
        });
    }
    group.finish();
}

fn bench_residuate(c: &mut Criterion) {
    let mut group = c.benchmark_group("residuate");
    for &n in &[10u32, 20] {
        let (deps, lits) = pipeline_exprs(n);
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for d in &deps {
                    for &l in &lits {
                        acc += residuate(d, l).node_count();
                    }
                }
                acc
            })
        });
        // The arena persists across calls — exactly how GuardSynth and
        // the machine compiler hold it — so steady-state probes are memo
        // hits on interned ids.
        let mut arena = ExprArena::new();
        let ids: Vec<_> = deps.iter().map(|d| arena.intern(d)).collect();
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &id in &ids {
                    for &l in &lits {
                        acc += arena.residuate(id, l).index() as u64;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine-compile");
    // Pipeline arrows each compile to a tiny (≤4-state) machine, so these
    // series measure per-dependency overhead and structural dedup; the
    // `large/*` series below compiles one (n+1)-state chain machine so a
    // regression in the big-automaton path can't hide in tiny-machine
    // noise.
    for &n in &[10u32, 20] {
        let (deps, _) = pipeline_exprs(n);
        debug_assert!(deps
            .iter()
            .all(|d| DependencyMachine::compile_tree_reference(d).state_count() <= 4));
        group.bench_with_input(BenchmarkId::new("tiny/tree", n), &n, |b, _| {
            b.iter(|| {
                deps.iter()
                    .map(|d| DependencyMachine::compile_tree_reference(d).state_count())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("tiny/arena", n), &n, |b, _| {
            b.iter(|| {
                DependencyMachine::compile_all(&deps)
                    .iter()
                    .map(DependencyMachine::state_count)
                    .sum::<usize>()
            })
        });
        // Structural dedup: the same dependency instantiated n times is
        // compiled once by the arena path, n times by the tree path.
        let replicated: Vec<Expr> = (0..deps.len()).map(|_| deps[0].clone()).collect();
        group.bench_with_input(BenchmarkId::new("tiny/tree-replicated", n), &n, |b, _| {
            b.iter(|| {
                replicated
                    .iter()
                    .map(|d| DependencyMachine::compile_tree_reference(d).state_count())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("tiny/arena-replicated", n), &n, |b, _| {
            b.iter(|| {
                DependencyMachine::compile_all(&replicated)
                    .iter()
                    .map(DependencyMachine::state_count)
                    .sum::<usize>()
            })
        });
        // One monolithic chain e₁·e₂·…·eₙ: a single machine whose state
        // count grows with n instead of many constant-size machines.
        let chain = normalize(&Expr::seq(
            deps.iter()
                .flat_map(|d| d.symbols())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|s| Expr::lit(Literal::pos(s))),
        ));
        group.bench_with_input(BenchmarkId::new("large/tree", n), &n, |b, _| {
            b.iter(|| DependencyMachine::compile_tree_reference(&chain).state_count())
        });
        group.bench_with_input(BenchmarkId::new("large/arena", n), &n, |b, _| {
            b.iter(|| {
                DependencyMachine::compile_all(std::slice::from_ref(&chain))
                    .iter()
                    .map(DependencyMachine::state_count)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("step");
    let (deps, lits) = pipeline_exprs(10);
    let machines = DependencyMachine::compile_all(&deps);
    // Per-message work of one actor: fold each alphabet literal into
    // every dependency's residual once.
    group.bench_function("tree-residual", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for d in &deps {
                let mut r = d.clone();
                for &l in &lits {
                    r = residuate(&r, l);
                }
                acc += r.node_count();
            }
            acc
        })
    });
    group.bench_function("fsm-step", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for m in &machines {
                let mut s = m.initial;
                for &l in &lits {
                    s = m.step(s, l);
                }
                acc += s.0;
            }
            acc
        })
    });
    group.finish();
}

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e-schedule");
    group.sample_size(20);
    for &n in &[10u32] {
        let w = pipeline_workload(n, n.min(8));
        for (label, runtime) in
            [("symbolic", DepRuntime::Symbolic), ("compiled", DepRuntime::Compiled)]
        {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let r = run_workflow(
                        &w.spec(),
                        ExecConfig {
                            sim: standard_sim(1),
                            guard_mode: GuardMode::Weakened,
                            max_steps: 5_000_000,
                            dep_runtime: runtime,
                            ..ExecConfig::seeded(1)
                        },
                    );
                    assert!(r.all_satisfied());
                    r.net.sent_total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_intern, bench_residuate, bench_compile, bench_step, bench_e2e);
criterion_main!(benches);
