//! Experiment C3 (wall-clock side): the cost of *reacting* to one
//! announcement — reducing a guard and re-deciding — must be cheap enough
//! that information can flow the moment it is available. Compares the
//! reduction-based reaction against recomputing the guard from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use event_algebra::Literal;
use guard::{CompiledWorkflow, GuardScope, GuardSynth};
use testkit::{klein_pipeline, symbols};

fn bench_reaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reaction");
    for &n in &[4usize, 6, 8] {
        let (_, syms) = symbols(n);
        let deps = klein_pipeline(&syms);
        let compiled = CompiledWorkflow::compile(&deps, GuardScope::Mentioning);
        let target = Literal::pos(syms[n - 1]);
        let g = compiled.guard(target);
        let fact = Literal::pos(syms[n - 2]);
        group.bench_with_input(BenchmarkId::new("incremental-reduce", n), &n, |b, _| {
            b.iter(|| g.assume_occurred(fact).holds_now())
        });
        group.bench_with_input(BenchmarkId::new("recompute-from-scratch", n), &n, |b, _| {
            b.iter(|| {
                let mut s = GuardSynth::new();
                let mut acc = temporal::Guard::top();
                for d in &deps {
                    if d.mentions(target.symbol()) {
                        acc = acc.and(&s.guard(d, target));
                    }
                }
                acc.assume_occurred(fact).holds_now()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reaction);
criterion_main!(benches);
