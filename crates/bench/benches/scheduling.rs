//! Experiment C1/B2 (wall-clock side): cost of scheduling one complete
//! workflow under the three engines — distributed guards, centralized
//! symbolic residuation, centralized precompiled automata.

use baseline::Engine;
use bench::{pipeline_workload, run_central, run_distributed, standard_sim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dist::{run_workflow, ExecConfig, GuardMode};

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(20);
    for &n in &[4u32, 8, 16] {
        let w = pipeline_workload(n, n.min(8));
        group.bench_with_input(BenchmarkId::new("distributed", n), &n, |b, _| {
            b.iter(|| {
                let r = run_distributed(&w, 1);
                assert!(r.all_satisfied());
                r.net.sent_total
            })
        });
        group.bench_with_input(BenchmarkId::new("central-symbolic", n), &n, |b, _| {
            b.iter(|| {
                let r = run_central(&w, 1, Engine::Symbolic);
                assert!(r.all_satisfied());
                r.net.sent_total
            })
        });
        group.bench_with_input(BenchmarkId::new("central-automata", n), &n, |b, _| {
            b.iter(|| {
                let r = run_central(&w, 1, Engine::Automata);
                assert!(r.all_satisfied());
                r.net.sent_total
            })
        });
    }
    group.finish();
}

/// Ablation: the paper's Section 4.2 "small insight" (weakened sequence
/// guards, the default) against fully faithful `◇(sequence)` guards with
/// residuation-based reduction.
fn bench_guard_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard-mode");
    group.sample_size(20);
    for &n in &[4u32, 8] {
        let w = pipeline_workload(n, n.min(8));
        for (label, mode) in [("weakened", GuardMode::Weakened), ("faithful", GuardMode::Faithful)]
        {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let r = run_workflow(
                        &w.spec(),
                        ExecConfig {
                            sim: standard_sim(1),
                            guard_mode: mode,
                            max_steps: 5_000_000,
                            ..ExecConfig::seeded(1)
                        },
                    );
                    assert!(r.all_satisfied());
                    r.net.sent_total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling, bench_guard_modes);
criterion_main!(benches);
