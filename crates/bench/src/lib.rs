//! Shared harness for the experiment suite: canonical workloads, run
//! helpers and table printing. Every figure/table regeneration binary and
//! every criterion bench builds on these, so the experiments in
//! EXPERIMENTS.md are reproducible with one command each.

#![warn(missing_docs)]

use agent::library::rda_transaction;
use agent::EventAttrs;
use baseline::{run_centralized, CentralConfig, Engine};
use dist::{
    run_workflow, AgentSpec, ExecConfig, FreeEventSpec, GuardMode, RunReport, Script, WorkflowSpec,
};
use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use sim::{LatencyModel, SimConfig, SiteId};
use speclang::parse_dependency;

/// A workload: dependencies plus free controllable events spread over
/// sites, all attempted at start.
pub struct Workload {
    /// Event names.
    pub table: SymbolTable,
    /// The dependencies.
    pub deps: Vec<Expr>,
    /// Number of symbols.
    pub nsyms: u32,
    /// Number of sites the events are spread over.
    pub sites: u32,
}

impl Workload {
    /// Build the executable spec (events round-robin across `sites`).
    pub fn spec(&self) -> WorkflowSpec {
        let free_events = (0..self.nsyms)
            .map(|i| FreeEventSpec {
                site: SiteId(i % self.sites),
                lit: Literal::pos(SymbolId(i)),
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            })
            .collect();
        WorkflowSpec {
            table: self.table.clone(),
            dependencies: self.deps.clone(),
            agents: vec![],
            free_events,
        }
    }
}

/// The Klein-precedence pipeline workload over `n` events (`e₀<e₁<…`),
/// spread over `sites` sites.
pub fn pipeline_workload(n: u32, sites: u32) -> Workload {
    let mut table = SymbolTable::new();
    let syms: Vec<SymbolId> = (0..n).map(|i| table.intern(&format!("e{i}"))).collect();
    Workload { table, deps: testkit::klein_pipeline(&syms), nsyms: n, sites }
}

/// The precedence fan-out workload: one root that must precede `n-1`
/// leaves (`root < leafᵢ`), so every leaf *waits* for the root's
/// occurrence announcement.
pub fn prec_fanout_workload(n: u32, sites: u32) -> Workload {
    let mut table = SymbolTable::new();
    let syms: Vec<SymbolId> = (0..n).map(|i| table.intern(&format!("e{i}"))).collect();
    let root = Literal::pos(syms[0]);
    let deps = syms[1..]
        .iter()
        .map(|&l| {
            let leaf = Literal::pos(l);
            Expr::or([
                Expr::lit(root.complement()),
                Expr::lit(leaf.complement()),
                Expr::seq([Expr::lit(root), Expr::lit(leaf)]),
            ])
        })
        .collect();
    Workload { table, deps, nsyms: n, sites }
}

/// The arrow fan-out workload: one root, `n-1` leaves.
pub fn fanout_workload(n: u32, sites: u32) -> Workload {
    let mut table = SymbolTable::new();
    let syms: Vec<SymbolId> = (0..n).map(|i| table.intern(&format!("e{i}"))).collect();
    Workload { table, deps: testkit::arrow_fanout(syms[0], &syms[1..]), nsyms: n, sites }
}

/// `k` independent arrow pairs over disjoint symbols.
pub fn disjoint_workload(pairs: u32, sites: u32) -> Workload {
    let n = pairs * 2;
    let mut table = SymbolTable::new();
    let syms: Vec<SymbolId> = (0..n).map(|i| table.intern(&format!("e{i}"))).collect();
    Workload { table, deps: testkit::disjoint_arrows(&syms), nsyms: n, sites }
}

/// A *reactive* pipeline of `n` task agents, one per site: each stage is
/// an RDA transaction that starts, works for `think` ticks, and commits;
/// `begin_on_commit` chains stage i+1's start to stage i's commit. This
/// models real tasks whose work happens between grants — the setting in
/// which per-decision network hops dominate end-to-end latency.
pub fn reactive_pipeline_spec(n: u32, think: u64) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let mut agents = Vec::new();
    for i in 0..n {
        let agent = rda_transaction(&format!("s{i}"), &mut table);
        let script = if i == 0 {
            Script::default().then("start").wait(think).then("commit")
        } else {
            // Later stages only plan the work and commit; their start is
            // triggered by the begin_on_commit dependency.
            Script::default().wait(think).then("commit")
        };
        agents.push(AgentSpec { site: SiteId(i), agent, script });
    }
    let mut deps = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let d =
            parse_dependency(&format!("begin_on_commit(s{i}, s{})", i + 1)).expect("macro parses");
        deps.push(d.instantiate(&event_algebra::Binding::new(), &mut table));
    }
    WorkflowSpec { table, dependencies: deps, agents, free_events: vec![] }
}

/// Run a reactive pipeline on the distributed scheduler.
pub fn run_reactive_distributed(n: u32, think: u64, seed: u64) -> RunReport {
    run_workflow(
        &reactive_pipeline_spec(n, think),
        ExecConfig {
            sim: standard_sim(seed),
            guard_mode: GuardMode::Weakened,
            max_steps: 5_000_000,
            ..ExecConfig::seeded(seed)
        },
    )
}

/// Run a reactive pipeline on the centralized baseline.
pub fn run_reactive_central(n: u32, think: u64, seed: u64, engine: Engine) -> RunReport {
    run_centralized(
        &reactive_pipeline_spec(n, think),
        CentralConfig {
            sim: standard_sim(seed),
            engine,
            scheduler_site: SiteId(0),
            max_steps: 5_000_000,
        },
    )
}

/// Standard network parameters used by the experiments: local messages
/// cost 1 tick, cross-site 10–20.
pub fn standard_sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        latency: LatencyModel::PerHop { local: 1, remote_min: 10, remote_max: 20 },
        fifo_links: true,
    }
}

/// Run a workload on the distributed event-centric scheduler.
pub fn run_distributed(w: &Workload, seed: u64) -> RunReport {
    run_workflow(
        &w.spec(),
        ExecConfig {
            sim: standard_sim(seed),
            guard_mode: GuardMode::Weakened,
            max_steps: 5_000_000,
            ..ExecConfig::seeded(seed)
        },
    )
}

/// Run a workload with the lazy (polling) ablation: parked attempts are
/// only re-evaluated every `period` virtual ticks.
pub fn run_lazy(w: &Workload, seed: u64, period: u64) -> RunReport {
    run_workflow(
        &w.spec(),
        ExecConfig {
            sim: standard_sim(seed),
            guard_mode: GuardMode::Weakened,
            max_steps: 5_000_000,
            lazy: Some((period, 400)),
            ..ExecConfig::seeded(seed)
        },
    )
}

/// Run a workload on a centralized baseline engine (scheduler on site 0).
pub fn run_central(w: &Workload, seed: u64, engine: Engine) -> RunReport {
    run_centralized(
        &w.spec(),
        CentralConfig {
            sim: standard_sim(seed),
            engine,
            scheduler_site: SiteId(0),
            max_steps: 5_000_000,
        },
    )
}

/// Print an aligned table row.
pub fn row(cols: &[String], widths: &[usize]) -> String {
    cols.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

/// Mean over a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_and_satisfy() {
        let w = pipeline_workload(5, 3);
        let r = run_distributed(&w, 1);
        assert!(r.all_satisfied(), "{r:#?}");
        let c = run_central(&w, 1, Engine::Symbolic);
        assert!(c.all_satisfied(), "{c:#?}");
    }

    #[test]
    fn fanout_and_disjoint_workloads_complete() {
        let r = run_distributed(&fanout_workload(5, 5), 2);
        assert!(r.all_satisfied() && r.unresolved.is_empty(), "{r:#?}");
        let r = run_distributed(&disjoint_workload(4, 4), 2);
        assert!(r.all_satisfied() && r.unresolved.is_empty(), "{r:#?}");
    }
}
