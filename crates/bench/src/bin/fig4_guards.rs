//! Experiment F4: regenerate Figure 4 / Example 9 — guard synthesis for
//! the paper's worked dependencies, printing the computed guard next to
//! the paper's closed form.

use event_algebra::{parse_expr, Expr, SymbolTable};
use guard::GuardSynth;
use temporal::Guard;

fn main() {
    let mut table = SymbolTable::new();
    let d_prec = parse_expr("~e + ~f + e.f", &mut table).unwrap();
    let d_arrow = parse_expr("~e + f", &mut table).unwrap();
    let d_arrow_t = parse_expr("~f + e", &mut table).unwrap();
    let e = table.event("e");
    let f = table.event("f");
    let mut s = GuardSynth::new();

    println!("== Figure 4 / Example 9: computed guards vs the paper ==\n");
    let cases: Vec<(&str, Expr, event_algebra::Literal, &str, Guard)> = vec![
        ("1", Expr::Top, e, "T", Guard::top()),
        ("2", Expr::Zero, e, "0", Guard::bottom()),
        ("3", Expr::lit(e), e, "T", Guard::top()),
        ("4", Expr::lit(e.complement()), e, "0", Guard::bottom()),
        ("5", d_prec.clone(), e.complement(), "T", Guard::top()),
        ("6", d_prec.clone(), e, "!f", Guard::not_yet(f)),
        ("7", d_prec.clone(), f.complement(), "T", Guard::top()),
        (
            "8",
            d_prec.clone(),
            f,
            "<>~e + []e",
            Guard::eventually(e.complement()).or(&Guard::occurred(e)),
        ),
        ("11a", d_arrow.clone(), e, "<>f", Guard::eventually(f)),
        ("11b", d_arrow_t.clone(), f, "<>e", Guard::eventually(e)),
    ];
    println!(
        "{:>4}  {:<18} {:>6}  {:<14} {:<24} {}",
        "case", "dependency", "event", "paper", "computed", "match"
    );
    println!("{}", "-".repeat(78));
    let mut all_ok = true;
    for (case, d, ev, paper, expected) in cases {
        let g = s.guard(&d, ev);
        let ok = g == expected;
        all_ok &= ok;
        println!(
            "{:>4}  {:<18} {:>6}  {:<14} {:<24} {}",
            case,
            d.display(&table).to_string(),
            table.literal_name(ev),
            paper,
            g.to_texpr().display(&table).to_string(),
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    println!(
        "\n{}",
        if all_ok { "all guards match the paper's closed forms" } else { "MISMATCHES FOUND" }
    );
    assert!(all_ok);
}
