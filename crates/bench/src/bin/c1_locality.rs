//! Experiment C1: "distributed guards obviate the centralized scheduler".
//!
//! The same pipeline workloads run under the distributed event-centric
//! scheduler and the centralized baseline, with events spread over a
//! growing number of sites (scheduler pinned to site 0). We report, per
//! configuration: total messages, the fraction crossing sites, and the
//! virtual completion time. The paper's claim shows up as the centralized
//! remote fraction staying pinned near 100% of decisions (every attempt
//! must travel to the scheduler's site) while the distributed scheduler's
//! traffic follows the dependency structure.

use baseline::Engine;
use bench::{mean, pipeline_workload, row, run_central, run_distributed};

fn main() {
    println!("== C1: message locality — distributed vs centralized ==\n");
    let widths = [7usize, 6, 12, 12, 10, 10, 11, 11, 9, 9];
    println!(
        "{}",
        row(
            &[
                "events".into(),
                "sites".into(),
                "dist msgs".into(),
                "cent msgs".into(),
                "dist rem%".into(),
                "cent rem%".into(),
                "dist load*".into(),
                "cent load*".into(),
                "dist t".into(),
                "cent t".into(),
            ],
            &widths
        )
    );
    for &(n, sites) in &[(4u32, 2u32), (8, 4), (12, 6), (16, 8), (24, 12), (32, 16)] {
        let w = pipeline_workload(n, sites);
        let seeds = 0..5u64;
        let mut dm = vec![];
        let mut cm = vec![];
        let mut dr = vec![];
        let mut cr = vec![];
        let mut dt = vec![];
        let mut ct = vec![];
        let mut dl = vec![];
        let mut cl = vec![];
        for seed in seeds {
            let d = run_distributed(&w, seed);
            assert!(d.all_satisfied(), "dist n={n} seed={seed}");
            let c = run_central(&w, seed, Engine::Symbolic);
            assert!(c.all_satisfied(), "cent n={n} seed={seed}");
            dm.push(d.net.sent_total as f64);
            cm.push(c.net.sent_total as f64);
            dr.push(100.0 * d.net.remote_fraction());
            cr.push(100.0 * c.net.remote_fraction());
            dl.push(d.net.max_site_load() as f64);
            cl.push(c.net.max_site_load() as f64);
            dt.push(d.duration as f64);
            ct.push(c.duration as f64);
        }
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    sites.to_string(),
                    format!("{:.0}", mean(&dm)),
                    format!("{:.0}", mean(&cm)),
                    format!("{:.1}", mean(&dr)),
                    format!("{:.1}", mean(&cr)),
                    format!("{:.0}", mean(&dl)),
                    format!("{:.0}", mean(&cl)),
                    format!("{:.0}", mean(&dt)),
                    format!("{:.0}", mean(&ct)),
                ],
                &widths
            )
        );
    }
    println!("\n(5 seeds per row; t = virtual completion time; rem% = cross-site share;");
    println!(" load* = deliveries handled by the busiest site — the bottleneck)");
}
