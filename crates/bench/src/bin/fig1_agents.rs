//! Experiment F1: regenerate Figure 1 — the common task agents (a typical
//! application and an RDA transaction), plus the library variants used by
//! the workflow examples.

use agent::library::{
    compensatable_task, looping_task, rda_transaction, two_phase_participant, typical_application,
};
use event_algebra::SymbolTable;

fn main() {
    println!("== Figure 1: some common task agents ==\n");
    let mut table = SymbolTable::new();
    for agent in [
        typical_application("app", &mut table),
        rda_transaction("rda", &mut table),
        compensatable_task("comp", &mut table),
        two_phase_participant("p2pc", &mut table),
        looping_task("looper", &mut table),
    ] {
        print!("{}", agent.render());
        println!();
    }
}
