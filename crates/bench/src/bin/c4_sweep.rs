//! Experiment C4: scalability — virtual completion time and message
//! volume as the workflow grows, distributed vs both centralized
//! engines. The distributed scheduler's completion time grows with the
//! dependency *depth* (pipelines) or stays flat (independent pairs),
//! while the centralized baselines serialize every decision through one
//! site.

use baseline::Engine;
use bench::{
    disjoint_workload, mean, pipeline_workload, row, run_central, run_distributed,
    run_reactive_central, run_reactive_distributed,
};

fn main() {
    println!("== C4: scalability sweep ==\n");
    println!("--- pipeline depth (events in a strict chain) ---");
    let widths = [7usize, 10, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "events".into(),
                "dist t".into(),
                "symb t".into(),
                "auto t".into(),
                "dist msg".into(),
                "symb msg".into(),
                "auto msg".into(),
            ],
            &widths
        )
    );
    for &n in &[4u32, 8, 16, 32] {
        let w = pipeline_workload(n, n);
        let mut cols = vec![n.to_string()];
        let mut times = vec![vec![], vec![], vec![]];
        let mut msgs = vec![vec![], vec![], vec![]];
        for seed in 0..3 {
            let d = run_distributed(&w, seed);
            assert!(d.all_satisfied(), "n={n}");
            times[0].push(d.duration as f64);
            msgs[0].push(d.net.sent_total as f64);
            let c = run_central(&w, seed, Engine::Symbolic);
            times[1].push(c.duration as f64);
            msgs[1].push(c.net.sent_total as f64);
            let a = run_central(&w, seed, Engine::Automata);
            times[2].push(a.duration as f64);
            msgs[2].push(a.net.sent_total as f64);
        }
        for t in &times {
            cols.push(format!("{:.0}", mean(t)));
        }
        for m in &msgs {
            cols.push(format!("{:.0}", mean(m)));
        }
        println!("{}", row(&cols, &widths));
    }

    println!("\n--- independent pairs (width scaling, no cross dependencies) ---");
    for &pairs in &[2u32, 8, 32, 64] {
        let w = disjoint_workload(pairs, pairs);
        let mut dt = vec![];
        let mut ct = vec![];
        for seed in 0..3 {
            let d = run_distributed(&w, seed);
            assert!(d.all_satisfied());
            dt.push(d.duration as f64);
            let c = run_central(&w, seed, Engine::Symbolic);
            ct.push(c.duration as f64);
        }
        println!("pairs {:>3}: dist t {:>6.0}   central t {:>6.0}", pairs, mean(&dt), mean(&ct));
    }
    println!("\n(independent work should complete in ~constant virtual time distributed;");
    println!(" the centralized scheduler is one serialization point for all of it)");

    println!("\n--- reactive pipeline: agents work `think` ticks between grants ---");
    println!("(stage i+1 starts when stage i commits; decisions on the critical path)");
    for &(n, think) in &[(4u32, 5u64), (8, 5), (8, 20), (16, 5)] {
        let mut dt = vec![];
        let mut ct = vec![];
        for seed in 0..3 {
            let d = run_reactive_distributed(n, think, seed);
            assert!(d.all_satisfied(), "dist n={n}: {d:?}");
            dt.push(d.duration as f64);
            let c = run_reactive_central(n, think, seed, Engine::Symbolic);
            assert!(c.all_satisfied(), "cent n={n}: {c:?}");
            ct.push(c.duration as f64);
        }
        println!(
            "stages {:>2} think {:>2}: dist t {:>6.0}   central t {:>6.0}",
            n,
            think,
            mean(&dt),
            mean(&ct)
        );
    }
    println!("\n(with real work between decisions, each stage pays its scheduling hops:");
    println!(" distributed decisions happen next to the task, centralized ones round-trip)");
}
