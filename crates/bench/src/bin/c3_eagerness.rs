//! Experiment C3: "information flows as soon as it is available, and
//! activities are not unnecessarily delayed."
//!
//! On the precedence fan-out workload (one root that must precede n−1
//! leaves), every leaf waits for the root's occurrence. We measure the
//! virtual-time gap between the root's occurrence and each leaf's
//! occurrence under
//!
//! - the paper's **eager** scheduler (announcements re-evaluate parked
//!   attempts immediately),
//! - the **lazy** ablation (parked attempts re-evaluated only every P
//!   ticks — a polling scheduler),
//! - the centralized baseline (decision gap at the scheduler plus the
//!   round trip the agent pays).
//!
//! The claim shows as the eager gap sitting at one announcement latency
//! (10–20 ticks) while the lazy gap grows with the poll period.

use baseline::Engine;
use bench::{mean, prec_fanout_workload, row, run_central, run_distributed, run_lazy};
use event_algebra::SymbolId;

fn reaction_gaps(report: &dist::RunReport, root: SymbolId) -> Vec<f64> {
    let Some(&(_, t_root, _)) = report.occurrences.iter().find(|(l, _, _)| l.symbol() == root)
    else {
        return vec![];
    };
    report
        .occurrences
        .iter()
        .filter(|(l, _, _)| l.symbol() != root && l.is_pos())
        .map(|&(_, t, _)| (t.saturating_sub(t_root)) as f64)
        .collect()
}

fn main() {
    println!("== C3: reaction latency after the enabling event ==\n");
    let widths = [7usize, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "leaves".into(),
                "eager".into(),
                "lazy P=10".into(),
                "lazy P=40".into(),
                "lazy P=80".into(),
                "central".into(),
            ],
            &widths
        )
    );
    for &n in &[3u32, 5, 9] {
        let w = prec_fanout_workload(n, n);
        let mut eager = vec![];
        let mut lazy10 = vec![];
        let mut lazy40 = vec![];
        let mut lazy80 = vec![];
        let mut cent = vec![];
        for seed in 0..5 {
            let d = run_distributed(&w, seed);
            assert!(d.all_satisfied(), "{d:#?}");
            eager.extend(reaction_gaps(&d, SymbolId(0)));
            for (period, acc) in [(10u64, &mut lazy10), (40, &mut lazy40), (80, &mut lazy80)] {
                let l = run_lazy(&w, seed, period);
                assert!(l.all_satisfied(), "lazy P={period}: {l:#?}");
                acc.extend(reaction_gaps(&l, SymbolId(0)));
            }
            let c = run_central(&w, seed, Engine::Symbolic);
            assert!(c.all_satisfied());
            cent.extend(reaction_gaps(&c, SymbolId(0)));
        }
        println!(
            "{}",
            row(
                &[
                    (n - 1).to_string(),
                    format!("{:.1}", mean(&eager)),
                    format!("{:.1}", mean(&lazy10)),
                    format!("{:.1}", mean(&lazy40)),
                    format!("{:.1}", mean(&lazy80)),
                    format!("{:.1}", mean(&cent)),
                ],
                &widths
            )
        );
    }
    println!("\n(virtual ticks from root occurrence to leaf occurrence; announcement");
    println!(" latency is 10-20 ticks; the central gap excludes the grant's return hop)");
}
