//! Experiment F3: regenerate Figure 3 — the truth table of the temporal
//! operators over the maximal traces `⟨e⟩` and `⟨ē⟩` at indices 0 and 1.

use event_algebra::{SymbolTable, Trace};
use temporal::{sat_at, TExpr};

fn main() {
    let mut table = SymbolTable::new();
    let e = table.event("e");
    let te = Trace::new([e]).unwrap();
    let tne = Trace::new([e.complement()]).unwrap();

    let rows: Vec<(&str, TExpr)> = vec![
        ("!e", TExpr::not_yet(e)),
        ("[]e", TExpr::occurred(e)),
        ("<>e", TExpr::eventually(e)),
        ("!~e", TExpr::not_yet(e.complement())),
        ("[]~e", TExpr::occurred(e.complement())),
        ("<>~e", TExpr::eventually(e.complement())),
    ];

    println!("== Figure 3: temporal operators related to events ==\n");
    println!("{:6} | <e>,0 | <e>,1 | <~e>,0 | <~e>,1", "");
    println!("{}", "-".repeat(42));
    for (label, expr) in &rows {
        let cells: Vec<&str> = [(&te, 0), (&te, 1), (&tne, 0), (&tne, 1)]
            .iter()
            .map(|&(u, i)| if sat_at(u, i, expr) { "x" } else { " " })
            .collect();
        println!(
            "{label:6} | {:^5} | {:^5} | {:^6} | {:^6}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\nderived identities (Example 8):");
    let checks: Vec<(&str, TExpr, Option<TExpr>)> = vec![
        (
            "(a) []e + []~e != T",
            TExpr::or([TExpr::occurred(e), TExpr::occurred(e.complement())]),
            None,
        ),
        (
            "(b) <>e + <>~e  = T",
            TExpr::or([TExpr::eventually(e), TExpr::eventually(e.complement())]),
            Some(TExpr::Top),
        ),
        (
            "(c) <>e | <>~e  = 0",
            TExpr::and([TExpr::eventually(e), TExpr::eventually(e.complement())]),
            Some(TExpr::Zero),
        ),
        (
            "(e) !e + []e    = T",
            TExpr::or([TExpr::not_yet(e), TExpr::occurred(e)]),
            Some(TExpr::Top),
        ),
        (
            "(f) !e + []~e   = !e",
            TExpr::or([TExpr::not_yet(e), TExpr::occurred(e.complement())]),
            Some(TExpr::not_yet(e)),
        ),
    ];
    for (label, lhs, rhs) in checks {
        let verdict = match rhs {
            Some(r) => temporal::texprs_equivalent_auto(&lhs, &r),
            None => !temporal::texprs_equivalent_auto(&lhs, &TExpr::Top),
        };
        println!("  {label}: {}", if verdict { "holds" } else { "VIOLATED" });
    }
}
