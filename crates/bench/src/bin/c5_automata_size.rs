//! Experiment C5: "[the automaton approach of [2]] avoids generating
//! product automata, but the individual automata themselves can be quite
//! large."
//!
//! For growing dependency families we compare the per-dependency residual
//! automaton's state count against the size of the synthesized guards
//! (total `T` node count over all participating events).

use bench::row;
use event_algebra::{DependencyMachine, Expr, SymbolId, SymbolTable};
use guard::{CompiledWorkflow, GuardScope};

fn measure(label: &str, dep: Expr, widths: &[usize]) {
    let machine = DependencyMachine::compile(&dep);
    let compiled = CompiledWorkflow::compile(std::slice::from_ref(&dep), GuardScope::Mentioning);
    println!(
        "{}",
        row(
            &[
                label.to_string(),
                dep.symbols().len().to_string(),
                machine.state_count().to_string(),
                compiled.total_guard_size().to_string(),
                compiled.max_guard_size().to_string(),
            ],
            widths
        )
    );
}

fn main() {
    println!("== C5: automaton states vs guard size ==\n");
    let widths = [22usize, 8, 10, 12, 14];
    println!(
        "{}",
        row(
            &[
                "dependency".into(),
                "symbols".into(),
                "automaton".into(),
                "guard nodes".into(),
                "max per event".into(),
            ],
            &widths
        )
    );
    let mut t = SymbolTable::new();
    let syms: Vec<SymbolId> = (0..8).map(|i| t.intern(&format!("e{i}"))).collect();

    // Chains e1·…·en: the residual automaton is linear, guards linear.
    for n in [2usize, 4, 6, 8] {
        let dep = testkit::chain(&syms[..n]);
        measure(&format!("chain-{n}"), dep, &widths);
    }
    // Disjunctions of independent arrows: the automaton must track every
    // combination of progress across branches (product-like growth within
    // one dependency), while guards stay per-event local.
    for pairs in [1usize, 2, 3] {
        let parts = testkit::disjoint_arrows(&syms[..pairs * 2]);
        let dep = Expr::And(parts.clone());
        measure(&format!("and-of-{pairs}-arrows"), dep, &widths);
    }
    // Conjunction of precedences sharing events.
    for n in [3usize, 4, 5] {
        let parts = testkit::klein_pipeline(&syms[..n]);
        let dep = Expr::And(parts);
        measure(&format!("pipeline-{n}-as-one"), dep, &widths);
    }
    println!("\n(the automaton is ONE object the scheduler must host and walk; each guard");
    println!(" lives at its own event — 'max per event' is what any single actor stores)");
}
