//! Experiment F2: regenerate Figure 2 — the scheduler state machines of
//! `D< = ē + f̄ + e·f` and `D→ = ē + f` — and, with `--universe`,
//! Example 1's trace universe and denotations (X1).

use event_algebra::{denotation, parse_expr, DependencyMachine, Expr, SymbolTable};

fn main() {
    let universe = std::env::args().any(|a| a == "--universe");
    let mut table = SymbolTable::new();
    let d_prec = parse_expr("~e + ~f + e.f", &mut table).unwrap();
    let d_arrow = parse_expr("~e + f", &mut table).unwrap();

    println!("== Figure 2: scheduler states and transitions ==\n");
    for (name, d) in [("D< = ~e + ~f + e.f", &d_prec), ("D-> = ~e + f", &d_arrow)] {
        println!("--- {name} ---");
        let m = DependencyMachine::compile(d);
        print!("{}", m.render(&table));
        println!();
    }

    if universe {
        println!("== Example 1: universe and denotations over Γ = {{e, ē, f, f̄}} ==\n");
        let syms: Vec<_> = table.ids().collect();
        let all = event_algebra::enumerate_universe(&syms);
        println!("|U_E| = {} traces:", all.len());
        for u in &all {
            println!("  {u}");
        }
        let e = Expr::lit(table.event("e"));
        let f = Expr::lit(table.event("f"));
        for (label, expr) in [
            ("[0]", Expr::Zero),
            ("[T]", Expr::Top),
            ("[e]", e.clone()),
            ("[e.f]", Expr::seq([e.clone(), f])),
            ("[e + ~e]", Expr::or([e.clone(), Expr::lit(table.complement_of("e"))])),
            ("[e | ~e]", Expr::And(vec![e, Expr::lit(table.complement_of("e"))])),
        ] {
            let d = denotation(&expr, &syms);
            println!("{label} has {} traces", d.len());
        }
    }
}
