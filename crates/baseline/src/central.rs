//! Centralized baseline schedulers.
//!
//! The paper's Section 4 motivates distributed guards by contrast with "a
//! centralized dependency-centric scheduler, in which dependencies are
//! explicitly represented in one place in the system", which "would
//! suffer from all the problems attendant to centralization". This module
//! implements that scheduler — in two engine variants — over the *same*
//! [`WorkflowSpec`]s, network simulator, agents and message protocol as
//! the distributed engine, so the architectural comparison (experiments
//! C1/C4) is apples-to-apples:
//!
//! - [`Engine::Symbolic`] — Section 3.3/3.4: the scheduler holds each
//!   dependency's residual expression and residuates at runtime;
//! - [`Engine::Automata`] — the approach of Attie et al. [2]: each
//!   dependency is precompiled into its finite residual machine and the
//!   scheduler just follows transitions (trading compile-time state
//!   enumeration for cheap runtime steps; it "avoids generating product
//!   automata, but the individual automata themselves can be quite
//!   large").

use agent::EventAttrs;
use dist::{AgentNode, Msg, Routing, RunReport, WorkflowSpec};
use event_algebra::{
    normalize, requires, residuate, satisfiable, satisfiable_avoiding, satisfies,
    DependencyMachine, Expr, Literal, StateId, SymbolId, Trace,
};
use sim::{Ctx, Network, NodeId, Process, SimConfig, SiteId, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which enforcement engine the central scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Runtime symbolic residuation (Section 3.3).
    Symbolic,
    /// Precompiled per-dependency automata ([2]).
    Automata,
}

/// Precomputed per-dependency automaton tables: next-state, liveness,
/// required-event and can-ever-occur bitmaps, so the runtime is pure
/// lookups.
#[derive(Debug)]
struct CompiledMachine {
    machine: DependencyMachine,
    live: Vec<bool>,
    /// `required[state][k]` — alphabet literal `k` must occur from here.
    required: Vec<Vec<bool>>,
    /// `can_ever[state][k]` — some satisfying completion from here
    /// contains alphabet literal `k` (not necessarily immediately).
    can_ever: Vec<Vec<bool>>,
}

impl CompiledMachine {
    fn compile(d: &Expr) -> CompiledMachine {
        let machine = DependencyMachine::compile(d);
        // All three tables are now O(1) reads of the machine's own
        // compile-time reachability analysis (can-ever is the avoidance
        // table at the literal's complement, which is in Γ_D by closure).
        let live = machine.live_mask();
        let required = (0..machine.state_count())
            .map(|s| {
                machine
                    .alphabet
                    .iter()
                    .map(|&l| machine.requires_event(StateId(s as u32), l))
                    .collect()
            })
            .collect();
        let can_ever = (0..machine.state_count())
            .map(|s| {
                machine
                    .alphabet
                    .iter()
                    .map(|&l| machine.may_reach_avoiding(StateId(s as u32), l.complement()))
                    .collect()
            })
            .collect();
        CompiledMachine { machine, live, required, can_ever }
    }
}

/// The single scheduler node holding every dependency.
pub struct CentralNode {
    engine: Engine,
    /// Symbolic engine state: current residuals.
    residuals: Vec<Expr>,
    /// Automata engine state: compiled machines + current states.
    machines: Vec<CompiledMachine>,
    states: Vec<StateId>,
    attrs: BTreeMap<Literal, EventAttrs>,
    occurred: BTreeMap<SymbolId, (Literal, Time, u64)>,
    parked: BTreeSet<Literal>,
    /// Parked complements forced by a rejection (no agent is waiting).
    forced: BTreeSet<Literal>,
    triggered: BTreeSet<Literal>,
    /// Scheduling decisions taken (accept/reject), for stats.
    pub decisions: u64,
    /// Monotone occurrence counter: several events can occur within one
    /// message delivery (a cascade of parked wake-ups), so the delivery
    /// sequence alone cannot order them.
    occurrence_seq: u64,
    routing: Arc<Routing>,
}

impl CentralNode {
    fn new(
        engine: Engine,
        deps: &[Expr],
        attrs: BTreeMap<Literal, EventAttrs>,
        routing: Arc<Routing>,
    ) -> CentralNode {
        CentralNode {
            engine,
            residuals: deps.iter().map(normalize).collect(),
            machines: deps.iter().map(CompiledMachine::compile).collect(),
            states: deps.iter().map(|_| StateId(0)).collect(),
            attrs,
            occurred: BTreeMap::new(),
            parked: BTreeSet::new(),
            forced: BTreeSet::new(),
            triggered: BTreeSet::new(),
            decisions: 0,
            occurrence_seq: 0,
            routing,
        }
    }

    fn resolved(&self, sym: SymbolId) -> bool {
        self.occurred.contains_key(&sym)
    }

    /// Acceptance per Section 3.4: every dependency stays satisfiable.
    fn acceptable(&self, lit: Literal) -> bool {
        match self.engine {
            Engine::Symbolic => self.residuals.iter().all(|r| satisfiable(&residuate(r, lit))),
            Engine::Automata => self.machines.iter().zip(&self.states).all(|(m, &s)| {
                let next = m.machine.step(s, lit);
                m.live[next.index()]
            }),
        }
    }

    /// `lit` is dead iff no satisfying completion of some residual ever
    /// contains it — only then is the complement forced. (An immediately
    /// unsatisfiable residual after `lit` merely means *not yet*: the
    /// attempt parks.)
    fn dead(&self, lit: Literal) -> bool {
        match self.engine {
            Engine::Symbolic => {
                self.residuals.iter().any(|r| !satisfiable_avoiding(r, lit.complement()))
            }
            Engine::Automata => self.machines.iter().zip(&self.states).any(|(m, &s)| {
                m.machine
                    .alphabet
                    .iter()
                    .position(|&a| a == lit)
                    .is_some_and(|k| !m.can_ever[s.index()][k])
            }),
        }
    }

    fn advance(&mut self, lit: Literal) {
        match self.engine {
            Engine::Symbolic => {
                for r in &mut self.residuals {
                    *r = residuate(r, lit);
                }
            }
            Engine::Automata => {
                for (m, s) in self.machines.iter().zip(self.states.iter_mut()) {
                    *s = m.machine.step(*s, lit);
                }
            }
        }
    }

    fn occur(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        self.occurrence_seq += 1;
        self.occurred.insert(lit.symbol(), (lit, ctx.now(), self.occurrence_seq));
        self.advance(lit);
        self.decisions += 1;
        if let Some(&agent) = self.routing.agent_of.get(&lit.symbol()) {
            ctx.send(agent, Msg::Granted { lit });
        }
        self.check_triggers(ctx);
        self.wake_parked(ctx);
    }

    fn check_triggers(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // A triggerable, unoccurred literal required by some dependency's
        // remaining obligation is proactively triggered.
        let mut to_trigger: Vec<Literal> = Vec::new();
        let candidates: Vec<Literal> = self
            .attrs
            .iter()
            .filter(|(l, a)| {
                a.triggerable && !self.resolved(l.symbol()) && !self.triggered.contains(l)
            })
            .map(|(&l, _)| l)
            .collect();
        for l in candidates {
            let needed = match self.engine {
                Engine::Symbolic => {
                    self.residuals.iter().any(|r| !r.is_top() && !r.is_zero() && requires(r, l))
                }
                Engine::Automata => self.machines.iter().zip(&self.states).any(|(m, &s)| {
                    m.machine
                        .alphabet
                        .iter()
                        .position(|&a| a == l)
                        .is_some_and(|k| m.required[s.index()][k])
                }),
            };
            if needed {
                to_trigger.push(l);
            }
        }
        for l in to_trigger {
            if let Some(&agent) = self.routing.agent_of.get(&l.symbol()) {
                self.triggered.insert(l);
                ctx.send(agent, Msg::Trigger { lit: l });
            }
        }
    }

    fn wake_parked(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let parked: Vec<Literal> = self.parked.iter().copied().collect();
            let mut progressed = false;
            for p in parked {
                if self.resolved(p.symbol()) {
                    self.parked.remove(&p);
                    self.forced.remove(&p);
                    continue;
                }
                let forced = self.forced.contains(&p);
                if self.acceptable(p) {
                    self.parked.remove(&p);
                    self.forced.remove(&p);
                    if forced {
                        self.occur_silent(ctx, p);
                    } else {
                        self.occur(ctx, p);
                    }
                    progressed = true;
                } else if self.dead(p) {
                    self.parked.remove(&p);
                    self.forced.remove(&p);
                    self.decisions += 1;
                    if !forced {
                        if let Some(&agent) = self.routing.agent_of.get(&p.symbol()) {
                            ctx.send(agent, Msg::Rejected { lit: p });
                        }
                    }
                    self.occur_complement(ctx, p);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// After rejecting `rejected`, its complement is inevitable — but its
    /// *timing* still respects acceptability: park it like any attempt.
    fn occur_complement(&mut self, ctx: &mut Ctx<'_, Msg>, rejected: Literal) {
        if !self.resolved(rejected.symbol()) {
            let c = rejected.complement();
            if self.acceptable(c) {
                self.occur_silent(ctx, c);
            } else if !self.dead(c) {
                self.parked.insert(c);
                self.forced.insert(c);
            }
            // Both polarities dead: jointly contradictory; the symbol
            // stays unresolved and is reported by the harness.
        }
    }

    /// Occur without notifying any agent (forced complements have no
    /// requesting agent).
    fn occur_silent(&mut self, ctx: &mut Ctx<'_, Msg>, lit: Literal) {
        self.occurrence_seq += 1;
        self.occurred.insert(lit.symbol(), (lit, ctx.now(), self.occurrence_seq));
        self.advance(lit);
        self.check_triggers(ctx);
        self.wake_parked(ctx);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match msg {
            Msg::Attempt { lit } => {
                if let Some(&(occ, _, _)) = self.occurred.get(&lit.symbol()) {
                    let reply =
                        if occ == lit { Msg::Granted { lit } } else { Msg::Rejected { lit } };
                    if let Some(&agent) = self.routing.agent_of.get(&lit.symbol()) {
                        ctx.send(agent, reply);
                    }
                    return;
                }
                if self.acceptable(lit) {
                    self.occur(ctx, lit);
                } else if self.dead(lit) {
                    self.decisions += 1;
                    if let Some(&agent) = self.routing.agent_of.get(&lit.symbol()) {
                        ctx.send(agent, Msg::Rejected { lit });
                    }
                    self.occur_complement(ctx, lit);
                } else {
                    self.parked.insert(lit);
                }
            }
            Msg::Inform { lit } => {
                if !self.resolved(lit.symbol()) {
                    self.occur_silent(ctx, lit);
                }
            }
            Msg::Kick => {}
            other => panic!("central scheduler received {other:?}"),
        }
    }
}

/// A node in the centralized deployment: the scheduler, an agent, or a
/// client standing in for an agent-less free event at its own site (so
/// attempts genuinely cross the network to the scheduler, as they would
/// in a real deployment).
pub enum CNode {
    /// The single central scheduler.
    Central(CentralNode),
    /// A task-agent driver (identical to the distributed one).
    Agent(AgentNode),
    /// Free-event client: sends its attempt on kick, absorbs the reply.
    Client {
        /// The event this client attempts.
        lit: Literal,
        /// Whether the event is controllable (attempt) or immediate
        /// (inform).
        controllable: bool,
        /// The scheduler's node.
        central: NodeId,
        /// Set once the decision arrived.
        decided: Option<bool>,
    },
}

impl Process<Msg> for CNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match self {
            CNode::Central(c) => c.handle(ctx, msg),
            CNode::Agent(a) => a.handle(ctx, msg),
            CNode::Client { lit, controllable, central, decided } => match msg {
                Msg::Kick => {
                    let m = if *controllable {
                        Msg::Attempt { lit: *lit }
                    } else {
                        Msg::Inform { lit: *lit }
                    };
                    ctx.send(*central, m);
                }
                Msg::Granted { .. } => *decided = Some(true),
                Msg::Rejected { .. } => *decided = Some(false),
                Msg::Trigger { .. } => { /* clients have nothing to run */ }
                other => panic!("client received {other:?}"),
            },
        }
    }
}

/// Configuration for a centralized run.
#[derive(Debug, Clone, Copy)]
pub struct CentralConfig {
    /// Network parameters.
    pub sim: SimConfig,
    /// Enforcement engine.
    pub engine: Engine,
    /// Site hosting the scheduler.
    pub scheduler_site: SiteId,
    /// Delivery budget.
    pub max_steps: u64,
}

impl CentralConfig {
    /// Defaults with a seed and engine.
    pub fn new(seed: u64, engine: Engine) -> CentralConfig {
        CentralConfig {
            sim: SimConfig { seed, ..SimConfig::default() },
            engine,
            scheduler_site: SiteId(0),
            max_steps: 1_000_000,
        }
    }
}

/// Run `spec` under the centralized scheduler. Agents live on their
/// declared sites; every scheduling decision crosses the network to the
/// scheduler's site.
pub fn run_centralized(spec: &WorkflowSpec, config: CentralConfig) -> RunReport {
    // Routing: every symbol's "actor" is the central node (node 0 after
    // agents); agents keep their ids. AgentNode sends attempts through
    // routing.actor_of, so it works unchanged.
    let mut attrs_of: BTreeMap<Literal, EventAttrs> = BTreeMap::new();
    let mut symbols: BTreeSet<SymbolId> = BTreeSet::new();
    for d in &spec.dependencies {
        symbols.extend(d.symbols());
    }
    let mut routing = Routing::default();
    let agent_count = spec.agents.len();
    let central_id = NodeId(agent_count as u32);
    for (aix, a) in spec.agents.iter().enumerate() {
        for ev in &a.agent.events {
            symbols.insert(ev.literal.symbol());
            attrs_of.insert(ev.literal, ev.attrs);
            attrs_of.insert(ev.literal.complement(), EventAttrs::immediate());
            routing.agent_of.insert(ev.literal.symbol(), NodeId(aix as u32));
        }
    }
    for f in &spec.free_events {
        symbols.insert(f.lit.symbol());
        attrs_of.insert(f.lit, f.attrs);
        attrs_of.entry(f.lit.complement()).or_insert_with(EventAttrs::immediate);
    }
    for &s in &symbols {
        routing.actor_of.insert(s, central_id);
    }
    let routing = Arc::new(routing);

    // Clients for attempted free events are placed at the event's own
    // site; their node ids follow agents and the scheduler.
    let mut routing = routing.as_ref().clone();
    let client_base = agent_count + 1;
    let mut clients: Vec<(SiteId, Literal, bool)> = Vec::new();
    for f in &spec.free_events {
        if f.attempt_after.is_some() {
            let id = NodeId((client_base + clients.len()) as u32);
            routing.agent_of.insert(f.lit.symbol(), id);
            clients.push((f.site, f.lit, f.attrs.controllable));
        }
    }
    let routing = Arc::new(routing);

    let mut nodes: Vec<(SiteId, CNode)> = Vec::new();
    for a in &spec.agents {
        nodes.push((
            a.site,
            CNode::Agent(AgentNode::new(a.agent.clone(), &a.script, Arc::clone(&routing))),
        ));
    }
    nodes.push((
        config.scheduler_site,
        CNode::Central(CentralNode::new(
            config.engine,
            &spec.dependencies,
            attrs_of.clone(),
            Arc::clone(&routing),
        )),
    ));
    for &(site, lit, controllable) in &clients {
        nodes.push((site, CNode::Client { lit, controllable, central: central_id, decided: None }));
    }

    let mut net: Network<Msg, CNode> = Network::new(config.sim, nodes);
    for aix in 0..agent_count {
        let id = NodeId(aix as u32);
        net.inject(id, id, Msg::Kick);
    }
    for ix in 0..clients.len() {
        let id = NodeId((client_base + ix) as u32);
        net.inject(id, id, Msg::Kick);
    }
    let outcome = net.run_to_quiescence(config.max_steps);
    let duration = net.now();
    let stats = net.stats().clone();
    let all = net.into_nodes();
    let CNode::Central(central) = &all[central_id.0 as usize] else { unreachable!() };

    // ----- report (same shape as the distributed engine's) -----
    let mut occurrences: Vec<(Literal, Time, u64)> = central.occurred.values().copied().collect();
    occurrences.sort_by_key(|&(_, t, q)| (t, q));
    let unresolved: Vec<SymbolId> =
        symbols.iter().copied().filter(|s| !central.occurred.contains_key(s)).collect();
    let trace = Trace::new(occurrences.iter().map(|&(l, _, _)| l)).expect("unique symbols");
    let mut maximal: Vec<Literal> = occurrences.iter().map(|&(l, _, _)| l).collect();
    maximal.extend(unresolved.iter().map(|&s| Literal::neg(s)));
    let maximal_trace = Trace::new(maximal).expect("distinct");
    let satisfied = spec.dependencies.iter().map(|d| satisfies(&maximal_trace, d)).collect();
    RunReport {
        trace,
        occurrences,
        unresolved,
        maximal_trace,
        satisfied,
        duration,
        steps: outcome.steps,
        net: stats,
        actor_stats: BTreeMap::new(),
        parked: central.parked.iter().copied().collect(),
        broken_promises: Vec::new(),
        journal: Vec::new(),
        termination: outcome.termination,
        fault_stats: None,
        divergence: Vec::new(),
        metrics: obs::MetricsSnapshot::default(),
        recording: None,
        alerts: Vec::new(),
        monitor: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dist::FreeEventSpec;
    use event_algebra::{parse_expr, SymbolTable};

    fn d_precedes_spec() -> (WorkflowSpec, Literal, Literal) {
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(1),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(2),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        (spec, e, f)
    }

    #[test]
    fn symbolic_engine_enforces_d_precedes() {
        for seed in 0..10 {
            let (spec, e, f) = d_precedes_spec();
            let report = run_centralized(&spec, CentralConfig::new(seed, Engine::Symbolic));
            assert!(report.all_satisfied(), "seed {seed}: {report:?}");
            let _ = (e, f);
        }
    }

    #[test]
    fn automata_engine_matches_symbolic() {
        for seed in 0..10 {
            let (spec, _, _) = d_precedes_spec();
            let r1 = run_centralized(&spec, CentralConfig::new(seed, Engine::Symbolic));
            let (spec2, _, _) = d_precedes_spec();
            let r2 = run_centralized(&spec2, CentralConfig::new(seed, Engine::Automata));
            assert_eq!(r1.trace, r2.trace, "seed {seed}");
            assert_eq!(r1.satisfied, r2.satisfied);
        }
    }

    #[test]
    fn precedence_is_enforced_in_every_outcome() {
        // Under D<, whatever choices the central scheduler makes (it may
        // accept f first and then reject e, forcing ē — a legitimate
        // resolution), the realized maximal trace satisfies the
        // dependency: e never follows f.
        for seed in 0..10 {
            let (spec, e, f) = d_precedes_spec();
            let report = run_centralized(&spec, CentralConfig::new(seed, Engine::Symbolic));
            assert!(report.all_satisfied(), "seed {seed}: {report:?}");
            let evs = report.maximal_trace.events();
            if let (Some(pe), Some(pf)) =
                (evs.iter().position(|&l| l == e), evs.iter().position(|&l| l == f))
            {
                assert!(pe < pf, "seed {seed}: {report:?}");
            }
        }
    }

    #[test]
    fn parked_event_wakes_after_enabling_occurrence() {
        // D→ = ē + f with f triggerable: e occurs, f is required, the
        // trigger logic fires it... here with free events we emulate:
        // attempt f only (guardless under D→ it is accepted right away);
        // then attempt e late: residual already ⊤, accepted.
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(2),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(30),
                },
            ],
        };
        let report = run_centralized(&spec, CentralConfig::new(5, Engine::Symbolic));
        assert!(report.all_satisfied(), "{report:?}");
        assert_eq!(report.trace.len(), 2, "{report:?}");
    }

    #[test]
    fn all_decisions_route_through_one_site() {
        let (spec, _, _) = d_precedes_spec();
        let report = run_centralized(&spec, CentralConfig::new(1, Engine::Symbolic));
        // Free events were injected at the scheduler itself here, so the
        // traffic is minimal — but the routing table maps every symbol to
        // the central node.
        assert!(report.steps > 0);
    }
}
