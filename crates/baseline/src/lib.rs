//! Baseline schedulers the paper argues against (or builds upon):
//! a centralized dependency-centric scheduler with either runtime
//! symbolic residuation (Section 3.3) or precompiled per-dependency
//! automata in the style of Attie et al. [2]. Both run the same
//! [`dist::WorkflowSpec`]s over the same simulated network as the
//! distributed engine, enabling the locality/scalability comparisons of
//! experiments C1, C4 and C5.

#![warn(missing_docs)]

mod central;

pub use central::{run_centralized, CNode, CentralConfig, CentralNode, Engine};
