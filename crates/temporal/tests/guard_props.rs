//! Property tests for the canonical guard representation: the mask
//! algebra agrees with the trace semantics, reductions by facts are
//! sound, and the `T` rendering round-trips.

use event_algebra::{enumerate_maximal, Expr, Literal, SymbolId};
use proptest::prelude::*;
use temporal::{guards_equivalent_auto, sat_at, Guard};

const NSYMS: u32 = 3;

fn syms() -> Vec<SymbolId> {
    (0..NSYMS).map(SymbolId).collect()
}

fn lit_strategy() -> impl Strategy<Value = Literal> {
    (0..NSYMS, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

/// Random literal-level guards built from atoms with `or`/`and`.
fn guard_strategy() -> impl Strategy<Value = Guard> {
    let atom = prop_oneof![
        lit_strategy().prop_map(Guard::occurred),
        lit_strategy().prop_map(Guard::not_yet),
        lit_strategy().prop_map(Guard::eventually),
        Just(Guard::top()),
        Just(Guard::bottom()),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| prop_oneof![Just(a.or(&b)), Just(a.and(&b))])
    })
}

/// Guards that may also carry `◇(sequence)` atoms.
fn seq_guard_strategy() -> impl Strategy<Value = Guard> {
    (guard_strategy(), prop::collection::vec(lit_strategy(), 2..=3)).prop_map(|(g, lits)| {
        // Distinct symbols for the sequence (repeats collapse to 0).
        let mut seen = std::collections::BTreeSet::new();
        let seq: Vec<Expr> =
            lits.into_iter().filter(|l| seen.insert(l.symbol())).map(Expr::lit).collect();
        if seq.len() < 2 {
            g
        } else {
            g.or(&Guard::eventually_expr(&Expr::seq(seq)))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `or`/`and` on guards are pointwise ∨/∧ of the trace semantics.
    #[test]
    fn or_and_are_pointwise(a in seq_guard_strategy(), b in seq_guard_strategy()) {
        let or = a.or(&b);
        let and = a.and(&b);
        for u in enumerate_maximal(&syms()) {
            for i in 0..=u.len() {
                prop_assert_eq!(or.eval(&u, i), a.eval(&u, i) || b.eval(&u, i));
                prop_assert_eq!(and.eval(&u, i), a.eval(&u, i) && b.eval(&u, i));
            }
        }
    }

    /// The rendered `T` expression denotes the same predicate.
    #[test]
    fn to_texpr_roundtrips(g in seq_guard_strategy()) {
        let te = g.to_texpr();
        for u in enumerate_maximal(&syms()) {
            for i in 0..=u.len() {
                prop_assert_eq!(g.eval(&u, i), sat_at(&u, i, &te), "{} at {},{}", te, u, i);
            }
        }
    }

    /// `is_top` is exact for literal-level guards (no sequence atoms).
    #[test]
    fn is_top_exact_on_literal_guards(g in guard_strategy()) {
        let brute = enumerate_maximal(&syms())
            .iter()
            .all(|u| (0..=u.len()).all(|i| g.eval(u, i)));
        prop_assert_eq!(g.is_top(), brute, "{:?}", g);
    }

    /// `is_bottom` is exact for literal-level guards.
    #[test]
    fn is_bottom_exact_on_literal_guards(g in guard_strategy()) {
        let brute = enumerate_maximal(&syms())
            .iter()
            .any(|u| (0..=u.len()).any(|i| g.eval(u, i)));
        prop_assert_eq!(!g.is_bottom(), brute, "{:?}", g);
    }

    /// Soundness of occurrence reduction (the Section 4.3 proof rules):
    /// folding the first `k` events of a trace into the guard *in
    /// occurrence order* (exactly what the actor's ordered fact log does)
    /// yields a guard that agrees with the original at every index ≥ k.
    /// Note the ordering is essential for `◇(sequence)` atoms: a single
    /// fact applied out of context may residuate a sequence to 0 even
    /// though earlier events had already discharged its prefix.
    #[test]
    fn assume_occurred_prefix_sound(g in seq_guard_strategy()) {
        for u in enumerate_maximal(&syms()) {
            let mut reduced = g.clone();
            for k in 0..u.len() {
                reduced = reduced.assume_occurred(u.events()[k]);
                for i in (k + 1)..=u.len() {
                    prop_assert_eq!(
                        reduced.eval(&u, i),
                        g.eval(&u, i),
                        "guard {:?} reduced {:?} on {} at {}",
                        g, reduced, u, i
                    );
                }
            }
        }
    }

    /// Literal-level guards (no sequence atoms) reduce soundly even under
    /// a single isolated fact.
    #[test]
    fn assume_occurred_single_fact_sound_without_seqs(
        g in guard_strategy(),
        l in lit_strategy(),
    ) {
        let reduced = g.assume_occurred(l);
        for u in enumerate_maximal(&syms()) {
            let Some(k) = u.events().iter().position(|&x| x == l) else { continue };
            for i in (k + 1)..=u.len() {
                prop_assert_eq!(reduced.eval(&u, i), g.eval(&u, i), "{:?} on {} at {}", g, u, i);
            }
        }
    }

    /// Soundness of promise reduction: on any trace where `l` eventually
    /// occurs, the promised-reduced guard agrees at *every* index.
    #[test]
    fn assume_promised_sound(g in seq_guard_strategy(), l in lit_strategy()) {
        let reduced = g.assume_promised(l);
        for u in enumerate_maximal(&syms()) {
            if !u.contains(l) {
                continue;
            }
            for i in 0..=u.len() {
                prop_assert_eq!(
                    reduced.eval(&u, i),
                    g.eval(&u, i),
                    "guard {:?} promised {:?} on {} at {}",
                    g, reduced, u, i
                );
            }
        }
    }

    /// Weakening sequences only ever *widens* the guard (the "small
    /// insight" trades precision for locality; the other events' guards
    /// recover the order).
    #[test]
    fn weaken_sequences_widens(g in seq_guard_strategy()) {
        let w = g.weaken_sequences();
        for u in enumerate_maximal(&syms()) {
            for i in 0..=u.len() {
                prop_assert!(!g.eval(&u, i) || w.eval(&u, i), "narrowed at {u},{i}");
            }
        }
    }

    /// Holding-now implies holding on every consistent state — i.e.
    /// `holds_now` guards never fire early.
    #[test]
    fn holds_now_is_sound(g in guard_strategy()) {
        if g.holds_now() {
            for u in enumerate_maximal(&syms()) {
                for i in 0..=u.len() {
                    prop_assert!(g.eval(&u, i));
                }
            }
        }
    }

    /// Mask equivalence is a congruence for or/and on literal guards.
    #[test]
    fn equiv_masks_matches_semantics(a in guard_strategy(), b in guard_strategy()) {
        let semantically = guards_equivalent_auto(&a, &b)
            && enumerate_maximal(&syms())
                .iter()
                .all(|u| (0..=u.len()).all(|i| a.eval(u, i) == b.eval(u, i)));
        prop_assert_eq!(a.equiv_masks(&b), semantically, "{:?} vs {:?}", a, b);
    }
}
