//! Announcement facts and event-local knowledge (Section 4.3).
//!
//! When an event occurs, `□e` announcements flow to the actors of
//! dependent events; `◇e` promises flow during the consensus protocol.
//! Each actor keeps a [`Knowledge`] map of what it has heard, applies
//! arriving [`Fact`]s to its [`Guard`] via the proof rules, and inspects
//! the [`GuardStatus`] to decide whether to allow a parked event.

use crate::guard_repr::{
    eventually_mask, not_yet_mask, occurred_mask, Guard, ST_A, ST_B, ST_C, ST_D, ST_FULL,
};
use event_algebra::{Literal, Polarity, SymbolId};
use std::collections::BTreeMap;

/// A fact an actor can learn about another event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fact {
    /// `□l`: the event has occurred.
    Occurred(Literal),
    /// `◇l`: the event is guaranteed to occur (a promise).
    Promised(Literal),
}

impl Fact {
    /// The literal the fact is about.
    pub fn literal(self) -> Literal {
        match self {
            Fact::Occurred(l) | Fact::Promised(l) => l,
        }
    }

    /// The set of knowledge states (now or in the future) consistent with
    /// this fact.
    pub fn closure_mask(self) -> u8 {
        match self {
            Fact::Occurred(l) => occurred_mask(l.polarity()),
            Fact::Promised(l) => eventually_mask(l.polarity()),
        }
    }
}

/// What one actor knows about one symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Know {
    /// Heard `□e` or `□ē`.
    Occurred(Polarity),
    /// Heard a promise `◇e` or `◇ē` (not yet confirmed occurred).
    Promised(Polarity),
}

/// An actor's accumulated knowledge about remote events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Knowledge {
    map: BTreeMap<SymbolId, Know>,
}

impl Knowledge {
    /// Empty knowledge.
    pub fn new() -> Knowledge {
        Knowledge::default()
    }

    /// Learn a fact. Occurrence supersedes promise; conflicting
    /// occurrences are impossible in `U_E` and panic loudly, since they
    /// indicate a broken execution substrate.
    pub fn learn(&mut self, fact: Fact) {
        let l = fact.literal();
        let entry = self.map.get(&l.symbol()).copied();
        let next = match (entry, fact) {
            (Some(Know::Occurred(p)), Fact::Occurred(l2)) => {
                assert_eq!(p, l2.polarity(), "both an event and its complement reported occurred");
                Know::Occurred(p)
            }
            (Some(Know::Occurred(p)), Fact::Promised(_)) => Know::Occurred(p),
            (_, Fact::Occurred(l2)) => Know::Occurred(l2.polarity()),
            (Some(Know::Promised(p)), Fact::Promised(l2)) => {
                assert_eq!(p, l2.polarity(), "promises for both polarities received");
                Know::Promised(p)
            }
            (None, Fact::Promised(l2)) => Know::Promised(l2.polarity()),
        };
        self.map.insert(l.symbol(), next);
    }

    /// What this actor knows about `sym`.
    pub fn about(&self, sym: SymbolId) -> Option<Know> {
        self.map.get(&sym).copied()
    }

    /// The set of knowledge states the symbol could *currently* be in,
    /// as far as this actor can tell.
    pub fn possible_states(&self, sym: SymbolId) -> u8 {
        match self.map.get(&sym) {
            Some(Know::Occurred(Polarity::Pos)) => ST_A,
            Some(Know::Occurred(Polarity::Neg)) => ST_B,
            Some(Know::Promised(Polarity::Pos)) => ST_A | ST_C,
            Some(Know::Promised(Polarity::Neg)) => ST_B | ST_D,
            None => ST_FULL,
        }
    }

    /// Number of symbols with any knowledge.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The scheduling status of a guard after reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardStatus {
    /// Some conjunct is fully discharged: the event may occur now.
    EnabledNow,
    /// No conjunct is discharged, but some could still be: park.
    Blocked,
    /// Every conjunct is dead: the event may never occur.
    Dead,
}

/// Classify a (reduced) guard.
pub fn status(g: &Guard) -> GuardStatus {
    if g.holds_now() {
        GuardStatus::EnabledNow
    } else if g.is_bottom() {
        GuardStatus::Dead
    } else {
        GuardStatus::Blocked
    }
}

/// A single outstanding requirement of a blocked conjunct.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Need {
    /// Discharged by hearing `□l`.
    Occurrence(Literal),
    /// Discharged by a promise `◇l` (weaker than occurrence — preferred,
    /// because it can be granted before the event happens).
    Promise(Literal),
    /// Requires agreement that `l` has *not yet* occurred at the instant
    /// this event occurs (the `¬l` consensus of Section 4.3).
    NotYetAgreement(Literal),
    /// A residual `◇(l₁·…)` sequence: needs the head to occur first.
    SequenceHead(Literal),
}

/// For each conjunct of `g`, the facts that would discharge it — the
/// input to the promise/consensus protocol. Conjuncts are returned in
/// canonical order; an empty inner vector means the conjunct already
/// holds. A constraint may require several facts at once: the `{C}` mask
/// (`◇l ∧ ¬l`) needs a promise *and* a not-yet agreement.
pub fn needs(g: &Guard) -> Vec<Vec<Need>> {
    g.conjuncts()
        .iter()
        .map(|c| {
            let mut out = Vec::new();
            for (s, m) in c.constrained_symbols() {
                let pos = Literal::pos(s);
                let neg = Literal::neg(s);
                // Choose the weakest discharging facts for the mask. An
                // exact ¬l mask uses the paper's not-yet agreement rather
                // than a promise of the complement: agreement does not
                // constrain the future of l's symbol.
                if m == not_yet_mask(Polarity::Pos) {
                    out.push(Need::NotYetAgreement(pos));
                } else if m == not_yet_mask(Polarity::Neg) {
                    out.push(Need::NotYetAgreement(neg));
                } else if eventually_mask(Polarity::Pos) & !m == 0 {
                    out.push(Need::Promise(pos));
                } else if eventually_mask(Polarity::Neg) & !m == 0 {
                    out.push(Need::Promise(neg));
                } else if occurred_mask(Polarity::Pos) & !m == 0 {
                    out.push(Need::Occurrence(pos));
                } else if occurred_mask(Polarity::Neg) & !m == 0 {
                    out.push(Need::Occurrence(neg));
                } else if m == ST_C {
                    // ◇l ∧ ¬l: promised but not yet occurred at this
                    // instant.
                    out.push(Need::Promise(pos));
                    out.push(Need::NotYetAgreement(pos));
                } else if m == ST_D {
                    out.push(Need::Promise(neg));
                    out.push(Need::NotYetAgreement(neg));
                } else if m == (ST_C | ST_D) {
                    // ¬l ∧ ¬l̄: neither resolved yet at this instant.
                    out.push(Need::NotYetAgreement(pos));
                } else {
                    // Remaining composite masks (e.g. {A,B}): discharged
                    // by an occurrence of whichever polarity the mask
                    // admits as a final state.
                    if m & ST_A != 0 {
                        out.push(Need::Occurrence(pos));
                    }
                    if m & ST_B != 0 {
                        out.push(Need::Occurrence(neg));
                    }
                }
            }
            for seq in c.seq_atoms() {
                if let Some(&head) = seq.first() {
                    out.push(Need::SequenceHead(head));
                }
            }
            out.sort();
            out.dedup();
            out
        })
        .collect()
}

/// The flattened, deduplicated requirements of a guard across all its
/// conjuncts — the edge set a static analyzer hangs a wait-for graph on.
/// Unlike [`needs`], which preserves the per-conjunct structure the
/// runtime protocol wants, this answers "which facts about which other
/// events does this guard mention at all".
pub fn need_edges(g: &Guard) -> Vec<Need> {
    let mut out: Vec<Need> = needs(g).into_iter().flatten().collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    #[test]
    fn knowledge_learning_and_states() {
        let (_, e, f) = setup();
        let mut k = Knowledge::new();
        assert_eq!(k.possible_states(e.symbol()), ST_FULL);
        k.learn(Fact::Promised(e));
        assert_eq!(k.possible_states(e.symbol()), ST_A | ST_C);
        k.learn(Fact::Occurred(e));
        assert_eq!(k.possible_states(e.symbol()), ST_A);
        // Promise after occurrence is a no-op.
        k.learn(Fact::Promised(e));
        assert_eq!(k.about(e.symbol()), Some(Know::Occurred(Polarity::Pos)));
        k.learn(Fact::Occurred(f.complement()));
        assert_eq!(k.possible_states(f.symbol()), ST_B);
        assert_eq!(k.len(), 2);
    }

    #[test]
    #[should_panic(expected = "complement")]
    fn conflicting_occurrences_panic() {
        let (_, e, _) = setup();
        let mut k = Knowledge::new();
        k.learn(Fact::Occurred(e));
        k.learn(Fact::Occurred(e.complement()));
    }

    #[test]
    fn status_classification() {
        let (_, e, _) = setup();
        assert_eq!(status(&Guard::top()), GuardStatus::EnabledNow);
        assert_eq!(status(&Guard::bottom()), GuardStatus::Dead);
        assert_eq!(status(&Guard::occurred(e)), GuardStatus::Blocked);
    }

    #[test]
    fn example10_message_sequence() {
        // Guards from D< (Example 9): G(f) = ◇ē + □e. f is attempted
        // first: blocked. ē occurs, □ē arrives: enabled.
        let (_, e, _) = setup();
        let g_f = Guard::eventually(e.complement()).or(&Guard::occurred(e));
        assert_eq!(status(&g_f), GuardStatus::Blocked);
        let after = g_f.assume_occurred(e.complement());
        assert_eq!(status(&after), GuardStatus::EnabledNow);
    }

    #[test]
    fn needs_reports_weakest_discharging_facts() {
        let (_, e, f) = setup();
        // ◇f → a promise of f suffices.
        assert_eq!(needs(&Guard::eventually(f)), vec![vec![Need::Promise(f)]]);
        // □e → must hear the occurrence.
        assert_eq!(needs(&Guard::occurred(e)), vec![vec![Need::Occurrence(e)]]);
        // ¬f → not-yet agreement.
        assert_eq!(needs(&Guard::not_yet(f)), vec![vec![Need::NotYetAgreement(f)]]);
        // ◇ē + □e → two conjuncts... but they merge into one mask {A,B,D};
        // the mask is not dischargeable by a single promise, falls back to
        // reporting per the table.
        let g = Guard::eventually(e.complement()).or(&Guard::occurred(e));
        let n = needs(&g);
        assert_eq!(n.len(), g.conjuncts().len());
    }

    #[test]
    fn needs_empty_for_top() {
        assert_eq!(needs(&Guard::top()), vec![Vec::<Need>::new()]);
    }

    #[test]
    fn fact_closures() {
        let (_, e, _) = setup();
        assert_eq!(Fact::Occurred(e).closure_mask(), ST_A);
        assert_eq!(Fact::Promised(e).closure_mask(), ST_A | ST_C);
        assert_eq!(Fact::Occurred(e.complement()).closure_mask(), ST_B);
        assert_eq!(Fact::Promised(e.complement()).closure_mask(), ST_B | ST_D);
    }
}
