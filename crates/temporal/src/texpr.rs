//! Syntax of the temporal guard language `T` (Section 4.1).
//!
//! `T` extends the event algebra `E` with `□E` (always), `◇E` (eventually)
//! and `¬E` (not yet) — Syntax 5–6. The coercion of an `E`-atom into `T`
//! reads "has occurred by the current index" (Semantics 7), which together
//! with stability gives `□e = e` while `□¬e ≠ ¬e`.

use event_algebra::{Expr, Literal, SymbolTable};
use std::fmt;

/// A temporal expression of `T`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TExpr {
    /// `0` — never satisfied.
    Zero,
    /// `⊤` — always satisfied.
    Top,
    /// A coerced `E`-atom: event `l` *has occurred* by the current index
    /// (Semantics 7). By stability this equals `□l`.
    Occ(Literal),
    /// `¬E` — `E` does not (yet) hold (Semantics 14).
    Not(Box<TExpr>),
    /// `□E` — `E` holds at every index from here on (Semantics 12).
    Always(Box<TExpr>),
    /// `◇E` — `E` holds at some index from here on (Semantics 13).
    Eventually(Box<TExpr>),
    /// `E₁ · E₂ · …` — indexed sequencing (Semantics 9).
    Seq(Vec<TExpr>),
    /// `E₁ + E₂ + …` — disjunction (Semantics 8).
    Or(Vec<TExpr>),
    /// `E₁ | E₂ | …` — conjunction (Semantics 10).
    And(Vec<TExpr>),
}

impl TExpr {
    /// `□l` — the event has occurred (written `Occ` since `□l = l` by
    /// stability).
    pub fn occurred(l: Literal) -> TExpr {
        TExpr::Occ(l)
    }

    /// `¬l` — the event has not occurred yet.
    pub fn not_yet(l: Literal) -> TExpr {
        TExpr::Not(Box::new(TExpr::Occ(l)))
    }

    /// `◇l` — the event is guaranteed to occur eventually.
    pub fn eventually(l: Literal) -> TExpr {
        TExpr::Eventually(Box::new(TExpr::Occ(l)))
    }

    /// Coerce an algebra expression into `T` (Syntax 5). Every `E`-operator
    /// has a fresh indexed reading, so the structure is mapped node by node.
    pub fn embed(e: &Expr) -> TExpr {
        match e {
            Expr::Zero => TExpr::Zero,
            Expr::Top => TExpr::Top,
            Expr::Lit(l) => TExpr::Occ(*l),
            Expr::Seq(v) => TExpr::Seq(v.iter().map(TExpr::embed).collect()),
            Expr::Or(v) => TExpr::Or(v.iter().map(TExpr::embed).collect()),
            Expr::And(v) => TExpr::And(v.iter().map(TExpr::embed).collect()),
        }
    }

    /// `◇E` for an algebra expression — the shape Definition 2 produces
    /// for the "what must still happen" part of a guard.
    pub fn eventually_expr(e: &Expr) -> TExpr {
        TExpr::Eventually(Box::new(TExpr::embed(e)))
    }

    /// n-ary disjunction with unit/absorbing collapsing.
    pub fn or(parts: impl IntoIterator<Item = TExpr>) -> TExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                TExpr::Zero => {}
                TExpr::Top => return TExpr::Top,
                TExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => TExpr::Zero,
            1 => out.pop().expect("len checked"),
            _ => TExpr::Or(out),
        }
    }

    /// n-ary conjunction with unit/absorbing collapsing.
    pub fn and(parts: impl IntoIterator<Item = TExpr>) -> TExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                TExpr::Top => {}
                TExpr::Zero => return TExpr::Zero,
                TExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => TExpr::Top,
            1 => out.pop().expect("len checked"),
            _ => TExpr::And(out),
        }
    }

    /// Node count, as a size measure for benches.
    pub fn node_count(&self) -> usize {
        match self {
            TExpr::Zero | TExpr::Top | TExpr::Occ(_) => 1,
            TExpr::Not(x) | TExpr::Always(x) | TExpr::Eventually(x) => 1 + x.node_count(),
            TExpr::Seq(v) | TExpr::Or(v) | TExpr::And(v) => {
                1 + v.iter().map(TExpr::node_count).sum::<usize>()
            }
        }
    }

    /// Render with event names.
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> TExprDisplay<'a> {
        TExprDisplay { expr: self, table: Some(table) }
    }
}

/// Display adaptor for [`TExpr`].
pub struct TExprDisplay<'a> {
    expr: &'a TExpr,
    table: Option<&'a SymbolTable>,
}

fn precedence(e: &TExpr) -> u8 {
    match e {
        TExpr::Or(_) => 0,
        TExpr::And(_) => 1,
        TExpr::Seq(_) => 2,
        _ => 3,
    }
}

impl fmt::Display for TExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        TExprDisplay { expr: self, table: None }.fmt(f)
    }
}

impl fmt::Display for TExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn lit(l: Literal, t: Option<&SymbolTable>) -> String {
            match t {
                Some(t) => t.literal_name(l),
                None => l.to_string(),
            }
        }
        fn go(
            e: &TExpr,
            t: Option<&SymbolTable>,
            parent: u8,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let prec = precedence(e);
            let paren = prec < parent;
            if paren {
                write!(f, "(")?;
            }
            match e {
                TExpr::Zero => write!(f, "0")?,
                TExpr::Top => write!(f, "T")?,
                TExpr::Occ(l) => write!(f, "[]{}", lit(*l, t))?,
                TExpr::Not(x) => {
                    write!(f, "!")?;
                    // ¬e prints as !e, not ![]e: the paper's notation.
                    if let TExpr::Occ(l) = **x {
                        write!(f, "{}", lit(l, t))?;
                    } else {
                        go(x, t, 3, f)?;
                    }
                }
                TExpr::Always(x) => {
                    write!(f, "[]")?;
                    go(x, t, 3, f)?;
                }
                TExpr::Eventually(x) => {
                    write!(f, "<>")?;
                    // ◇e prints as <>e, not <>[]e.
                    if let TExpr::Occ(l) = **x {
                        write!(f, "{}", lit(l, t))?;
                    } else {
                        go(x, t, 3, f)?;
                    }
                }
                TExpr::Seq(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ".")?;
                        }
                        go(p, t, prec + 1, f)?;
                    }
                }
                TExpr::Or(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        go(p, t, prec + 1, f)?;
                    }
                }
                TExpr::And(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        go(p, t, prec + 1, f)?;
                    }
                }
            }
            if paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        // A bare `Occ` at top level still prints as `[]e` to make the
        // "has occurred" reading explicit.
        go(self.expr, self.table, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{SymbolId, SymbolTable};

    fn l(i: u32) -> Literal {
        Literal::pos(SymbolId(i))
    }

    #[test]
    fn constructors_collapse_units() {
        assert_eq!(TExpr::or([TExpr::Zero, TExpr::occurred(l(0))]), TExpr::occurred(l(0)));
        assert_eq!(TExpr::or([TExpr::Top, TExpr::occurred(l(0))]), TExpr::Top);
        assert_eq!(TExpr::and([TExpr::Top, TExpr::occurred(l(0))]), TExpr::occurred(l(0)));
        assert_eq!(TExpr::and([TExpr::Zero, TExpr::occurred(l(0))]), TExpr::Zero);
    }

    #[test]
    fn embed_maps_structure() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let d = Expr::or([Expr::lit(e.complement()), Expr::seq([Expr::lit(e), Expr::lit(f)])]);
        let te = TExpr::embed(&d);
        match te {
            TExpr::Or(v) => {
                assert_eq!(v.len(), 2);
                assert!(v.contains(&TExpr::Occ(e.complement())));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn display_renders_operators() {
        let g = TExpr::or([TExpr::eventually(l(1).complement()), TExpr::occurred(l(0))]);
        let s = g.to_string();
        assert!(s.contains("<>"), "{s}");
        assert!(s.contains("[]"), "{s}");
        let n = TExpr::not_yet(l(0));
        assert!(n.to_string().starts_with('!'), "{n}");
    }

    #[test]
    fn node_count() {
        assert_eq!(TExpr::occurred(l(0)).node_count(), 1);
        assert_eq!(TExpr::not_yet(l(0)).node_count(), 2);
        assert_eq!(TExpr::or([TExpr::not_yet(l(0)), TExpr::eventually(l(1))]).node_count(), 5);
    }
}
