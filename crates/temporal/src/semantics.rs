//! Indexed semantics of `T` over maximal traces (Semantics 7–14).
//!
//! `u ⊨ᵢ E` is evaluated at a pair of a trace and an index `i` counting
//! how many events have occurred so far (`i = 0` means nothing has
//! happened yet). Top-level evaluation uses *maximal* traces (`U_T`):
//! every symbol is eventually resolved to the event or its complement —
//! this is what makes `◇e + ◇ē = ⊤` a theorem (Example 8b).
//!
//! Because traces are finite (single occurrence over a finite alphabet),
//! nothing changes after index `size(u)`, so the `□`/`◇` quantifiers range
//! over `i..=size(u)`.

use crate::texpr::TExpr;
use event_algebra::Trace;

/// `u ⊨ᵢ E` (Semantics 7–14).
pub fn sat_at(u: &Trace, i: usize, e: &TExpr) -> bool {
    match e {
        TExpr::Zero => false,
        TExpr::Top => true,
        // Semantics 7: the event occurred among the first i events.
        TExpr::Occ(l) => u.contains_by(*l, i),
        TExpr::Or(v) => v.iter().any(|p| sat_at(u, i, p)),
        TExpr::And(v) => v.iter().all(|p| sat_at(u, i, p)),
        TExpr::Not(x) => !sat_at(u, i, x),
        TExpr::Always(x) => (i..=u.len()).all(|j| sat_at(u, j, x)),
        TExpr::Eventually(x) => (i..=u.len()).any(|j| sat_at(u, j, x)),
        TExpr::Seq(v) => sat_seq(u, i, v),
    }
}

/// Semantics 9, n-ary: `u ⊨ᵢ E₁·E₂` iff `∃j ≤ i: u ⊨ⱼ E₁ ∧ u^j ⊨ᵢ₋ⱼ E₂`,
/// where `u^j` drops the first `j` events.
fn sat_seq(u: &Trace, i: usize, parts: &[TExpr]) -> bool {
    match parts {
        [] => true,
        [only] => sat_at(u, i, only),
        [head, rest @ ..] => {
            (0..=i.min(u.len())).any(|j| sat_at(u, j, head) && sat_seq(&u.suffix(j), i - j, rest))
        }
    }
}

/// Evaluate at every index of a maximal trace: `result[i] = u ⊨ᵢ E`.
pub fn sat_profile(u: &Trace, e: &TExpr) -> Vec<bool> {
    (0..=u.len()).map(|i| sat_at(u, i, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Literal, SymbolId, Trace};

    fn l(i: u32) -> Literal {
        Literal::pos(SymbolId(i))
    }
    fn tr(lits: &[Literal]) -> Trace {
        Trace::new(lits.iter().copied()).unwrap()
    }

    #[test]
    fn example7_indexed_satisfaction() {
        // u = ⟨e f g⟩ (a maximal trace over three symbols).
        let (e, f, g) = (l(0), l(1), l(2));
        let u = tr(&[e, f, g]);
        // u ⊨₀ ◇g.
        assert!(sat_at(&u, 0, &TExpr::eventually(g)));
        // u ⊨₀ ¬e | ¬f | ¬g.
        assert!(sat_at(
            &u,
            0,
            &TExpr::and([TExpr::not_yet(e), TExpr::not_yet(f), TExpr::not_yet(g)])
        ));
        // u ⊨₀ ◇(f·g).
        let fg = TExpr::Seq(vec![TExpr::Occ(f), TExpr::Occ(g)]);
        assert!(sat_at(&u, 0, &TExpr::Eventually(Box::new(fg))));
        // u ⊨₁ □e | ¬f | ¬g.
        assert!(sat_at(
            &u,
            1,
            &TExpr::and([TExpr::occurred(e), TExpr::not_yet(f), TExpr::not_yet(g)])
        ));
        // u ⊭₁ e·f but u ⊨₂ e·f.
        let ef = TExpr::Seq(vec![TExpr::Occ(e), TExpr::Occ(f)]);
        assert!(!sat_at(&u, 1, &ef));
        assert!(sat_at(&u, 2, &ef));
    }

    #[test]
    fn figure3_truth_table() {
        // The table of Figure 3: Γ = {e, ē}, traces ⟨e⟩ and ⟨ē⟩ at
        // indices 0 and 1.
        let e = l(0);
        let te = tr(&[e]);
        let tne = tr(&[e.complement()]);
        let not_e = TExpr::not_yet(e);
        let box_e = TExpr::occurred(e);
        let dia_e = TExpr::eventually(e);
        let not_ne = TExpr::not_yet(e.complement());
        let box_ne = TExpr::occurred(e.complement());
        let dia_ne = TExpr::eventually(e.complement());
        // Row ¬e: ✓ at (⟨e⟩,0), ✗ at (⟨e⟩,1), ✓ at (⟨ē⟩,0), ✓ at (⟨ē⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &not_e),
                sat_at(&te, 1, &not_e),
                sat_at(&tne, 0, &not_e),
                sat_at(&tne, 1, &not_e)
            ],
            [true, false, true, true]
        );
        // Row □e: only (⟨e⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &box_e),
                sat_at(&te, 1, &box_e),
                sat_at(&tne, 0, &box_e),
                sat_at(&tne, 1, &box_e)
            ],
            [false, true, false, false]
        );
        // Row ◇e: (⟨e⟩,0) and (⟨e⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &dia_e),
                sat_at(&te, 1, &dia_e),
                sat_at(&tne, 0, &dia_e),
                sat_at(&tne, 1, &dia_e)
            ],
            [true, true, false, false]
        );
        // Row ¬ē: all but (⟨ē⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &not_ne),
                sat_at(&te, 1, &not_ne),
                sat_at(&tne, 0, &not_ne),
                sat_at(&tne, 1, &not_ne)
            ],
            [true, true, true, false]
        );
        // Row □ē: only (⟨ē⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &box_ne),
                sat_at(&te, 1, &box_ne),
                sat_at(&tne, 0, &box_ne),
                sat_at(&tne, 1, &box_ne)
            ],
            [false, false, false, true]
        );
        // Row ◇ē: (⟨ē⟩,0) and (⟨ē⟩,1).
        assert_eq!(
            [
                sat_at(&te, 0, &dia_ne),
                sat_at(&te, 1, &dia_ne),
                sat_at(&tne, 0, &dia_ne),
                sat_at(&tne, 1, &dia_ne)
            ],
            [false, false, true, true]
        );
    }

    #[test]
    fn stability_box_e_equals_e() {
        // □(Occ e) = Occ e on every (maximal trace, index).
        let e = l(0);
        for u in [tr(&[e, l(1)]), tr(&[l(1), e]), tr(&[e.complement(), l(1)])] {
            for i in 0..=u.len() {
                assert_eq!(
                    sat_at(&u, i, &TExpr::Always(Box::new(TExpr::Occ(e)))),
                    sat_at(&u, i, &TExpr::Occ(e)),
                );
            }
        }
    }

    #[test]
    fn box_not_e_differs_from_not_e() {
        // □¬e ≠ ¬e: before e occurs on ⟨e⟩, ¬e holds but □¬e does not.
        let e = l(0);
        let u = tr(&[e]);
        let not_e = TExpr::not_yet(e);
        let box_not_e = TExpr::Always(Box::new(TExpr::not_yet(e)));
        assert!(sat_at(&u, 0, &not_e));
        assert!(!sat_at(&u, 0, &box_not_e));
    }

    #[test]
    fn box_entails_diamond() {
        let e = l(0);
        let u = tr(&[e]);
        for i in 0..=u.len() {
            if sat_at(&u, i, &TExpr::occurred(e)) {
                assert!(sat_at(&u, i, &TExpr::eventually(e)));
            }
        }
    }

    #[test]
    fn embedded_algebra_atoms_are_monotone_in_index() {
        use event_algebra::Expr;
        let (e, f) = (l(0), l(1));
        let exprs = [
            Expr::lit(e),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
            Expr::or([Expr::lit(e.complement()), Expr::lit(f)]),
        ];
        for ex in &exprs {
            let te = TExpr::embed(ex);
            for u in [tr(&[e, f]), tr(&[f, e]), tr(&[e.complement(), f])] {
                let profile = sat_profile(&u, &te);
                for w in profile.windows(2) {
                    assert!(!w[0] || w[1], "monotone violated for {ex} on {u}");
                }
            }
        }
    }

    #[test]
    fn eventually_of_embedded_expr_is_whole_trace_satisfaction() {
        use event_algebra::{satisfies, Expr};
        let (e, f) = (l(0), l(1));
        let ex = Expr::seq([Expr::lit(e), Expr::lit(f)]);
        let te = TExpr::eventually_expr(&ex);
        for u in [tr(&[e, f]), tr(&[f, e]), tr(&[e, f.complement()])] {
            for i in 0..=u.len() {
                assert_eq!(sat_at(&u, i, &te), satisfies(&u, &ex), "u={u} i={i}");
            }
        }
    }

    #[test]
    fn sat_profile_length() {
        let e = l(0);
        let u = tr(&[e, l(1)]);
        assert_eq!(sat_profile(&u, &TExpr::occurred(e)).len(), 3);
    }
}
