//! Canonical guard representation and the simplifier (Sections 4.2–4.3).
//!
//! At any (maximal trace, index) pair, each symbol `s` is in exactly one
//! of four *knowledge states*:
//!
//! | state | meaning                                   | atoms true        |
//! |-------|-------------------------------------------|-------------------|
//! | `A`   | `e` has occurred                          | `□e ◇e ¬ē`        |
//! | `B`   | `ē` has occurred                          | `□ē ◇ē ¬e`        |
//! | `C`   | neither yet; `e` will occur               | `◇e ¬e ¬ē`        |
//! | `D`   | neither yet; `ē` will occur               | `◇ē ¬e ¬ē`        |
//!
//! Every guard atom over a literal (`□l`, `◇l`, `¬l`) denotes a subset of
//! `{A,B,C,D}`, so a conjunction of atoms is a *mask* per symbol, and a
//! guard is a union of such conjuncts (DNF). On this representation the
//! identities of Example 8 — `◇e + ◇ē = ⊤`, `◇e | ◇ē = 0`, `¬e + □e = ⊤`,
//! `¬e | □e = 0`, `¬e + □ē = ¬e` — are decided *exactly* by mask algebra.
//!
//! The one construct that escapes per-symbol masks is `◇(E)` for a
//! sequence `E = l₁·l₂·…` (order matters across symbols). Those are kept
//! as symbolic atoms and reduced by residuation as occurrence facts
//! arrive; Definition 2's "small insight" (replacing sequences by
//! conjunctions, sound because the other events' guards enforce the
//! order) is available as [`Guard::weaken_sequences`].

use crate::texpr::TExpr;
use event_algebra::{normalize, Expr, Literal, Polarity, SymbolId, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// Bit for state `A` (the event occurred).
pub const ST_A: u8 = 1;
/// Bit for state `B` (the complement occurred).
pub const ST_B: u8 = 2;
/// Bit for state `C` (neither yet; the event will occur).
pub const ST_C: u8 = 4;
/// Bit for state `D` (neither yet; the complement will occur).
pub const ST_D: u8 = 8;
/// All four states — an unconstrained symbol.
pub const ST_FULL: u8 = 15;

/// The mask of `□l`: the literal has occurred.
pub fn occurred_mask(pol: Polarity) -> u8 {
    match pol {
        Polarity::Pos => ST_A,
        Polarity::Neg => ST_B,
    }
}

/// The mask of `◇l`: the literal has occurred or is guaranteed to.
pub fn eventually_mask(pol: Polarity) -> u8 {
    match pol {
        Polarity::Pos => ST_A | ST_C,
        Polarity::Neg => ST_B | ST_D,
    }
}

/// The mask of `¬l`: the literal has not occurred yet.
pub fn not_yet_mask(pol: Polarity) -> u8 {
    match pol {
        Polarity::Pos => ST_B | ST_C | ST_D,
        Polarity::Neg => ST_A | ST_C | ST_D,
    }
}

/// `u ⊨ l₁·l₂·…·lₖ` for a sequence atom (pure literals, the only form a
/// canonical [`Conjunct`] stores). Semantics 3 asks for a consecutive
/// split of `u` whose parts contain the factors pointwise; for literal
/// factors that is exactly an in-order subsequence match, decided in one
/// linear scan. The naive route — build an `Expr::Seq` and call
/// `satisfies`, which enumerates (and clones) every split — is what the
/// online monitor used to pay on every faithful-guard check.
fn seq_satisfied(u: &Trace, seq: &[Literal]) -> bool {
    let mut need = seq.iter();
    let mut next = need.next();
    for &l in u.events() {
        match next {
            None => break,
            Some(&want) if want == l => next = need.next(),
            Some(_) => {}
        }
    }
    next.is_none()
}

/// The knowledge state of `sym` on maximal trace `u` at index `i`.
pub fn state_on(u: &Trace, i: usize, sym: SymbolId) -> u8 {
    let pos = Literal::pos(sym);
    let neg = Literal::neg(sym);
    if u.contains_by(pos, i) {
        ST_A
    } else if u.contains_by(neg, i) {
        ST_B
    } else if u.contains(pos) {
        ST_C
    } else if u.contains(neg) {
        ST_D
    } else {
        panic!("trace {u} is not maximal for symbol {sym}");
    }
}

/// One DNF conjunct: a mask per constrained symbol plus residual `◇(seq)`
/// atoms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Conjunct {
    /// Per-symbol state masks; absent symbols are unconstrained
    /// ([`ST_FULL`]). Invariant: stored masks are never `0` or `ST_FULL`.
    masks: BTreeMap<SymbolId, u8>,
    /// `◇(l₁·l₂·…)` atoms, each with ≥ 2 literals (single literals fold
    /// into the mask) over pairwise distinct symbols.
    seqs: BTreeSet<Vec<Literal>>,
}

impl Conjunct {
    /// The unconstrained conjunct (`⊤`).
    pub fn top() -> Conjunct {
        Conjunct::default()
    }

    /// `true` if no constraints remain — the conjunct (hence the guard)
    /// holds now.
    pub fn is_top(&self) -> bool {
        self.masks.is_empty() && self.seqs.is_empty()
    }

    /// The mask for `sym` (`ST_FULL` when unconstrained).
    pub fn mask(&self, sym: SymbolId) -> u8 {
        self.masks.get(&sym).copied().unwrap_or(ST_FULL)
    }

    /// Constrained symbols, in order.
    pub fn constrained_symbols(&self) -> impl Iterator<Item = (SymbolId, u8)> + '_ {
        self.masks.iter().map(|(&s, &m)| (s, m))
    }

    /// The residual sequence atoms.
    pub fn seq_atoms(&self) -> impl Iterator<Item = &Vec<Literal>> {
        self.seqs.iter()
    }

    /// Intersect a mask constraint; returns `false` if the conjunct dies.
    #[must_use]
    fn constrain(&mut self, sym: SymbolId, mask: u8) -> bool {
        let m = self.mask(sym) & mask;
        if m == 0 {
            return false;
        }
        if m == ST_FULL {
            self.masks.remove(&sym);
        } else {
            self.masks.insert(sym, m);
        }
        true
    }

    /// `self` implies `other`: every state vector satisfying `self`
    /// satisfies `other` (used for absorption).
    fn implies(&self, other: &Conjunct) -> bool {
        other.masks.iter().all(|(&s, &om)| self.mask(s) & !om == 0)
            && other.seqs.is_subset(&self.seqs)
    }

    /// All symbols this conjunct mentions (masks and sequence atoms).
    pub fn symbols(&self) -> BTreeSet<SymbolId> {
        let mut out: BTreeSet<SymbolId> = self.masks.keys().copied().collect();
        for seq in &self.seqs {
            out.extend(seq.iter().map(|l| l.symbol()));
        }
        out
    }

    /// Evaluate on a maximal trace at an index (sequence atoms are
    /// index-independent because embedded algebra expressions are
    /// index-monotone and the trace is maximal).
    pub fn eval(&self, u: &Trace, i: usize) -> bool {
        self.masks.iter().all(|(&s, &m)| state_on(u, i, s) & m != 0)
            && self.seqs.iter().all(|seq| seq_satisfied(u, seq))
    }
}

/// A guard: a disjunction of [`Conjunct`]s, kept canonical (sorted,
/// deduplicated, absorption-reduced). The empty disjunction is `0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Guard {
    conjuncts: Vec<Conjunct>,
}

impl Guard {
    /// The guard `⊤` — the event may always occur.
    pub fn top() -> Guard {
        Guard { conjuncts: vec![Conjunct::top()] }
    }

    /// The guard `0` — the event may never occur.
    pub fn bottom() -> Guard {
        Guard { conjuncts: Vec::new() }
    }

    /// The atomic guard `□l`.
    pub fn occurred(l: Literal) -> Guard {
        Guard::from_mask(l.symbol(), occurred_mask(l.polarity()))
    }

    /// The atomic guard `◇l`.
    pub fn eventually(l: Literal) -> Guard {
        Guard::from_mask(l.symbol(), eventually_mask(l.polarity()))
    }

    /// The atomic guard `¬l`.
    pub fn not_yet(l: Literal) -> Guard {
        Guard::from_mask(l.symbol(), not_yet_mask(l.polarity()))
    }

    /// A single-symbol mask guard.
    pub fn from_mask(sym: SymbolId, mask: u8) -> Guard {
        if mask == 0 {
            return Guard::bottom();
        }
        let mut c = Conjunct::top();
        let ok = c.constrain(sym, mask);
        debug_assert!(ok);
        Guard { conjuncts: vec![c] }
    }

    /// `◇(E)` for an algebra expression: `◇` distributes over `+` and `|`
    /// (embedded expressions are index-monotone), single literals fold to
    /// mask atoms, and literal sequences stay symbolic.
    pub fn eventually_expr(e: &Expr) -> Guard {
        fn go(e: &Expr) -> Guard {
            match e {
                Expr::Zero => Guard::bottom(),
                Expr::Top => Guard::top(),
                Expr::Lit(l) => Guard::eventually(*l),
                Expr::Or(v) => v.iter().fold(Guard::bottom(), |acc, p| acc.or(&go(p))),
                Expr::And(v) => v.iter().fold(Guard::top(), |acc, p| acc.and(&go(p))),
                Expr::Seq(v) => {
                    let lits: Vec<Literal> = v
                        .iter()
                        .map(|p| match p {
                            Expr::Lit(l) => *l,
                            other => panic!("normalized Seq contains non-literal {other}"),
                        })
                        .collect();
                    let mut c = Conjunct::top();
                    c.seqs.insert(lits);
                    Guard { conjuncts: vec![c] }
                }
            }
        }
        go(&normalize(e))
    }

    /// The conjuncts (canonical order).
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Disjunction.
    pub fn or(&self, other: &Guard) -> Guard {
        let mut cs = self.conjuncts.clone();
        cs.extend(other.conjuncts.iter().cloned());
        Guard::canonical(cs)
    }

    /// Conjunction (cross product of conjuncts).
    pub fn and(&self, other: &Guard) -> Guard {
        let mut cs = Vec::new();
        for a in &self.conjuncts {
            'pairs: for b in &other.conjuncts {
                let mut c = a.clone();
                for (&s, &m) in &b.masks {
                    if !c.constrain(s, m) {
                        // This particular pair is contradictory; the other
                        // b-conjuncts may still combine with `a`.
                        continue 'pairs;
                    }
                }
                c.seqs.extend(b.seqs.iter().cloned());
                cs.push(c);
            }
        }
        Guard::canonical(cs)
    }

    /// Canonicalize: drop dead conjuncts, sort, dedupe, absorb, and merge
    /// sibling conjuncts that differ in a single symbol's mask.
    fn canonical(mut cs: Vec<Conjunct>) -> Guard {
        // Absorption: drop any conjunct that implies another.
        let mut keep: Vec<Conjunct> = Vec::with_capacity(cs.len());
        cs.sort();
        cs.dedup();
        for c in cs {
            if keep.iter().any(|k| c.implies(k)) {
                continue;
            }
            keep.retain(|k| !k.implies(&c));
            keep.push(c);
        }
        // Merge: two conjuncts identical except one symbol's mask unite
        // into a single conjunct with the mask union (repeat to fixpoint).
        loop {
            let mut merged = false;
            'pairs: for i in 0..keep.len() {
                for j in (i + 1)..keep.len() {
                    if keep[i].seqs != keep[j].seqs {
                        continue;
                    }
                    let (a, b) = (&keep[i], &keep[j]);
                    let syms: BTreeSet<SymbolId> =
                        a.masks.keys().chain(b.masks.keys()).copied().collect();
                    let diffs: Vec<SymbolId> =
                        syms.into_iter().filter(|&s| a.mask(s) != b.mask(s)).collect();
                    if let [only] = diffs[..] {
                        let union = a.mask(only) | b.mask(only);
                        let mut c = a.clone();
                        if union == ST_FULL {
                            c.masks.remove(&only);
                        } else {
                            c.masks.insert(only, union);
                        }
                        keep.swap_remove(j);
                        keep.swap_remove(i);
                        // Re-run absorption against the merged conjunct.
                        keep.retain(|k| !k.implies(&c));
                        if !keep.iter().any(|k| c.implies(k)) {
                            keep.push(c);
                        }
                        merged = true;
                        break 'pairs;
                    }
                }
            }
            if !merged {
                break;
            }
        }
        keep.sort();
        Guard { conjuncts: keep }
    }

    /// `true` if this is syntactically `0` (no conjunct left) — for
    /// literal-level guards this is also semantic falsity.
    pub fn is_bottom(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// `true` if some conjunct is fully discharged — the guard holds *now*
    /// regardless of any other symbol's state.
    pub fn holds_now(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_top)
    }

    /// Semantic tautology check.
    ///
    /// Exact for guards without sequence atoms (enumerates the 4ⁿ state
    /// vectors of the constrained symbols); conjuncts carrying sequence
    /// atoms are conservatively treated as non-covering, so `true` is
    /// always sound.
    pub fn is_top(&self) -> bool {
        if self.holds_now() {
            return true;
        }
        let syms: Vec<SymbolId> = self
            .conjuncts
            .iter()
            .flat_map(|c| c.masks.keys().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if syms.len() > 12 {
            return false; // give up: callers fall back to semantic checks
        }
        let usable: Vec<&Conjunct> = self.conjuncts.iter().filter(|c| c.seqs.is_empty()).collect();
        if usable.is_empty() {
            return false;
        }
        // Enumerate state vectors; each symbol independently takes A/B/C/D.
        let mut states = vec![ST_A; syms.len()];
        loop {
            let covered = usable
                .iter()
                .any(|c| syms.iter().zip(&states).all(|(&s, &st)| c.mask(s) & st != 0));
            if !covered {
                return false;
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == syms.len() {
                    return true;
                }
                states[k] <<= 1;
                if states[k] > ST_D {
                    states[k] = ST_A;
                    k += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Exact semantic equivalence for guards without sequence atoms;
    /// guards with sequence atoms compare structurally (callers needing
    /// exact equivalence with sequences use trace enumeration — see
    /// `equiv::guards_equivalent`).
    pub fn equiv_masks(&self, other: &Guard) -> bool {
        if self == other {
            return true;
        }
        if self.has_seq_atoms() || other.has_seq_atoms() {
            return false;
        }
        let syms: Vec<SymbolId> = self
            .conjuncts
            .iter()
            .chain(other.conjuncts.iter())
            .flat_map(|c| c.masks.keys().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut states = vec![ST_A; syms.len()];
        loop {
            let eva = self
                .conjuncts
                .iter()
                .any(|c| syms.iter().zip(&states).all(|(&s, &st)| c.mask(s) & st != 0));
            let evb = other
                .conjuncts
                .iter()
                .any(|c| syms.iter().zip(&states).all(|(&s, &st)| c.mask(s) & st != 0));
            if eva != evb {
                return false;
            }
            let mut k = 0;
            loop {
                if k == syms.len() {
                    return true;
                }
                states[k] <<= 1;
                if states[k] > ST_D {
                    states[k] = ST_A;
                    k += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// `true` if any conjunct carries a `◇(sequence)` atom.
    pub fn has_seq_atoms(&self) -> bool {
        self.conjuncts.iter().any(|c| !c.seqs.is_empty())
    }

    /// Evaluate on a maximal trace at an index — the reference semantics
    /// used in the Theorem 6 checks.
    pub fn eval(&self, u: &Trace, i: usize) -> bool {
        self.conjuncts.iter().any(|c| c.eval(u, i))
    }

    /// All symbols the guard mentions — these are the events whose
    /// announcements the owning actor must subscribe to.
    pub fn symbols(&self) -> BTreeSet<SymbolId> {
        self.conjuncts.iter().flat_map(|c| c.symbols()).collect()
    }

    /// `true` iff every symbol the guard mentions satisfies `pred` — the
    /// allocation-free form of [`Guard::symbols`]. The online monitor asks
    /// "are all of this guard's symbols resolved?" after every gated
    /// firing, where materialising the symbol set would dominate the
    /// whole check.
    pub fn symbols_all(&self, mut pred: impl FnMut(SymbolId) -> bool) -> bool {
        for c in &self.conjuncts {
            for &s in c.masks.keys() {
                if !pred(s) {
                    return false;
                }
            }
            for seq in &c.seqs {
                for l in seq {
                    if !pred(l.symbol()) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Replace every `◇(l₁·…·lₖ)` atom by the conjunction `◇l₁|…|◇lₖ` —
    /// the paper's "small insight" in Section 4.2: the guards on the other
    /// events already enforce the order, so an event's own guard only
    /// needs the eventual occurrences.
    pub fn weaken_sequences(&self) -> Guard {
        let mut out = Vec::new();
        'conj: for c in &self.conjuncts {
            let mut n = Conjunct { masks: c.masks.clone(), seqs: BTreeSet::new() };
            for seq in &c.seqs {
                for &l in seq {
                    if !n.constrain(l.symbol(), eventually_mask(l.polarity())) {
                        continue 'conj;
                    }
                }
            }
            out.push(n);
        }
        Guard::canonical(out)
    }

    /// Incorporate the fact "`l` has occurred" (an arriving `□l`
    /// announcement): Section 4.3's proof rules. For each conjunct, the
    /// symbol's constraint is resolved (`□l`, `◇l` → discharged; `¬l` → the
    /// conjunct dies; complements symmetrically), and sequence atoms are
    /// residuated by `l`.
    pub fn assume_occurred(&self, l: Literal) -> Guard {
        self.assume_mask(l.symbol(), occurred_mask(l.polarity()), Some(l))
    }

    /// Incorporate the fact "`l` is guaranteed to occur" (an arriving `◇l`
    /// promise): `◇l` constraints discharge, `◇l̄`/`□l̄` constraints die,
    /// `□l` and `¬l` remain (the paper: they are "unaffected when ◇e is
    /// received").
    pub fn assume_promised(&self, l: Literal) -> Guard {
        self.assume_mask(l.symbol(), eventually_mask(l.polarity()), None)
    }

    fn assume_mask(&self, sym: SymbolId, closure: u8, occurred: Option<Literal>) -> Guard {
        let mut out = Vec::new();
        'conj: for c in &self.conjuncts {
            let mut n = Conjunct::top();
            // Masks: intersect with the closure; discharge when implied.
            for (&s, &m) in &c.masks {
                if s == sym {
                    if m & closure == 0 {
                        continue 'conj; // contradiction: conjunct dies
                    }
                    if closure & !m == 0 {
                        continue; // constraint discharged forever
                    }
                    if !n.constrain(s, m & closure) {
                        continue 'conj;
                    }
                } else if !n.constrain(s, m) {
                    continue 'conj;
                }
            }
            // Sequence atoms: step on occurrence facts. A `◇(l₁·…·lₖ)`
            // atom over pairwise-distinct symbols is its own linear
            // automaton whose state is the remaining suffix, so rules
            // R3/R6/R7/R8 reduce to direct suffix manipulation — no
            // `Expr` allocation or symbolic rewriting on the per-message
            // path (the tree `residuate` remains the oracle; see
            // `stepping_sequences_matches_residuation` below).
            for seq in &c.seqs {
                if let Some(l) = occurred {
                    if seq.iter().any(|x| x.symbol() == sym) {
                        if seq[0] != l {
                            // R7/R8: `l`'s symbol is needed later in the
                            // sequence (or as the head's complement) —
                            // the ordering can no longer be met.
                            continue 'conj;
                        }
                        // R3: advance past the head.
                        match seq.len() - 1 {
                            0 => {} // fully discharged
                            1 => {
                                let rest = seq[1];
                                if !n.constrain(rest.symbol(), eventually_mask(rest.polarity())) {
                                    continue 'conj;
                                }
                            }
                            _ => {
                                n.seqs.insert(seq[1..].to_vec());
                            }
                        }
                        continue;
                    }
                }
                n.seqs.insert(seq.clone());
            }
            out.push(n);
        }
        Guard::canonical(out)
    }
}

impl Guard {
    /// Render the guard back into `T` syntax, choosing minimal atom
    /// combinations per mask (table-driven).
    pub fn to_texpr(&self) -> TExpr {
        if self.is_bottom() {
            return TExpr::Zero;
        }
        let parts = self.conjuncts.iter().map(|c| {
            let mut factors: Vec<TExpr> = Vec::new();
            for (&s, &m) in &c.masks {
                factors.push(mask_to_texpr(s, m));
            }
            for seq in &c.seqs {
                factors.push(TExpr::Eventually(Box::new(TExpr::Seq(
                    seq.iter().map(|&l| TExpr::Occ(l)).collect(),
                ))));
            }
            TExpr::and(factors)
        });
        TExpr::or(parts)
    }
}

/// Render one symbol's mask as the minimal `T` combination, per the
/// 16-entry table derived from the state/atom correspondence.
fn mask_to_texpr(s: SymbolId, m: u8) -> TExpr {
    let e = Literal::pos(s);
    let ne = Literal::neg(s);
    let box_e = TExpr::occurred(e);
    let box_ne = TExpr::occurred(ne);
    let dia_e = TExpr::eventually(e);
    let dia_ne = TExpr::eventually(ne);
    let not_e = TExpr::not_yet(e);
    let not_ne = TExpr::not_yet(ne);
    match m {
        0 => TExpr::Zero,
        1 => box_e,                                            // {A} = □e
        2 => box_ne,                                           // {B} = □ē
        3 => TExpr::or([box_e, box_ne]),                       // {A,B}
        4 => TExpr::and([dia_e, not_e]),                       // {C}
        5 => dia_e,                                            // {A,C} = ◇e
        6 => TExpr::or([box_ne, TExpr::and([dia_e, not_e])]),  // {B,C}
        7 => TExpr::or([dia_e, box_ne]),                       // {A,B,C}
        8 => TExpr::and([dia_ne, not_ne]),                     // {D}
        9 => TExpr::or([box_e, TExpr::and([dia_ne, not_ne])]), // {A,D}
        10 => dia_ne,                                          // {B,D} = ◇ē
        11 => TExpr::or([dia_ne, box_e]),                      // {A,B,D}
        12 => TExpr::and([not_e, not_ne]),                     // {C,D}
        13 => not_ne,                                          // {A,C,D} = ¬ē
        14 => not_e,                                           // {B,C,D} = ¬e
        _ => TExpr::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    #[test]
    fn example8_identities() {
        let (_, e, _) = setup();
        // (a) □e + □ē ≠ ⊤.
        assert!(!Guard::occurred(e).or(&Guard::occurred(e.complement())).is_top());
        // (b) ◇e + ◇ē = ⊤.
        assert!(Guard::eventually(e).or(&Guard::eventually(e.complement())).is_top());
        // (c) ◇e | ◇ē = 0.
        assert!(Guard::eventually(e).and(&Guard::eventually(e.complement())).is_bottom());
        // (d) ◇e + □ē ≠ ⊤.
        assert!(!Guard::eventually(e).or(&Guard::occurred(e.complement())).is_top());
        // (e) ¬e is the boolean complement of □e.
        assert!(Guard::not_yet(e).or(&Guard::occurred(e)).is_top());
        assert!(Guard::not_yet(e).and(&Guard::occurred(e)).is_bottom());
        // (f) ¬e + □ē = ¬e.
        let lhs = Guard::not_yet(e).or(&Guard::occurred(e.complement()));
        assert!(lhs.equiv_masks(&Guard::not_yet(e)));
        assert_eq!(lhs, Guard::not_yet(e));
    }

    #[test]
    fn box_entails_diamond_in_masks() {
        let (_, e, _) = setup();
        // □e + ◇e = ◇e; □e | ◇e = □e.
        assert_eq!(Guard::occurred(e).or(&Guard::eventually(e)), Guard::eventually(e));
        assert_eq!(Guard::occurred(e).and(&Guard::eventually(e)), Guard::occurred(e));
    }

    #[test]
    fn paper_reduction_of_d_precedes_guard() {
        // (¬f|¬f̄) + □f̄ reduces to ¬f (end of Example 9.6).
        let (_, _, f) = setup();
        let lhs = Guard::not_yet(f)
            .and(&Guard::not_yet(f.complement()))
            .or(&Guard::occurred(f.complement()));
        assert_eq!(lhs, Guard::not_yet(f));
    }

    #[test]
    fn example9_8_shape_is_canonical() {
        // ◇ē + □e has two conjuncts that cannot merge: {B,D} ∪ {A}.
        let (_, e, _) = setup();
        let g = Guard::eventually(e.complement()).or(&Guard::occurred(e));
        assert_eq!(g.conjuncts().len(), 1, "masks on one symbol merge: {{A,B,D}}");
        assert_eq!(g.conjuncts()[0].mask(e.symbol()), ST_A | ST_B | ST_D);
        let rendered = g.to_texpr();
        // Renders as ◇ē + □e per the mask table.
        assert_eq!(rendered, TExpr::or([TExpr::eventually(e.complement()), TExpr::occurred(e)]));
    }

    #[test]
    fn and_cross_product_kills_contradictions() {
        let (_, e, f) = setup();
        let g1 = Guard::occurred(e).or(&Guard::eventually(f));
        let g2 = Guard::not_yet(e);
        let g = g1.and(&g2);
        // □e|¬e dies; ◇f|¬e survives.
        assert_eq!(g.conjuncts().len(), 1);
        assert!(!g.is_bottom());
    }

    #[test]
    fn assume_occurred_proof_rules() {
        let (_, e, f) = setup();
        // □e arriving reduces ◇e and □e to ⊤ and ¬e to 0.
        assert!(Guard::eventually(e).assume_occurred(e).is_top());
        assert!(Guard::occurred(e).assume_occurred(e).is_top());
        assert!(Guard::not_yet(e).assume_occurred(e).is_bottom());
        // □ē arriving reduces □e/◇e to 0 and ¬e to ⊤.
        assert!(Guard::occurred(e).assume_occurred(e.complement()).is_bottom());
        assert!(Guard::eventually(e).assume_occurred(e.complement()).is_bottom());
        assert!(Guard::not_yet(e).assume_occurred(e.complement()).is_top());
        // Unrelated symbols are untouched.
        let g = Guard::eventually(f);
        assert_eq!(g.assume_occurred(e), g);
    }

    #[test]
    fn assume_promised_proof_rules() {
        let (_, e, _) = setup();
        // ◇e arriving discharges ◇e…
        assert!(Guard::eventually(e).assume_promised(e).is_top());
        // …kills ◇ē and □ē…
        assert!(Guard::eventually(e.complement()).assume_promised(e).is_bottom());
        assert!(Guard::occurred(e.complement()).assume_promised(e).is_bottom());
        // …and leaves □e and ¬e pending (narrowed but not discharged).
        assert!(!Guard::occurred(e).assume_promised(e).holds_now());
        assert!(!Guard::occurred(e).assume_promised(e).is_bottom());
        assert!(!Guard::not_yet(e).assume_promised(e).holds_now());
        assert!(!Guard::not_yet(e).assume_promised(e).is_bottom());
    }

    #[test]
    fn seq_atoms_residuate_on_occurrence() {
        let (_, e, f) = setup();
        let seq = Expr::seq([Expr::lit(e), Expr::lit(f)]);
        let g = Guard::eventually_expr(&seq);
        assert!(g.has_seq_atoms());
        // After e occurs, ◇(e·f) becomes ◇f.
        let after_e = g.assume_occurred(e);
        assert_eq!(after_e, Guard::eventually(f));
        // After f occurs first, ◇(e·f) is dead.
        let after_f = g.assume_occurred(f);
        assert!(after_f.is_bottom());
        // ē kills it too.
        assert!(g.assume_occurred(e.complement()).is_bottom());
    }

    #[test]
    fn stepping_sequences_matches_residuation() {
        // The direct suffix stepping in `assume_mask` must agree with the
        // symbolic oracle `residuate` on every literal of a longer chain.
        let mut t = SymbolTable::new();
        let lits: Vec<Literal> = ["a", "b", "c", "d"].iter().map(|n| t.event(n)).collect();
        let seq = Expr::seq(lits.iter().map(|&l| Expr::lit(l)));
        let g = Guard::eventually_expr(&seq);
        for &l in &lits {
            for by in [l, l.complement()] {
                let stepped = g.assume_occurred(by);
                let oracle = Guard::eventually_expr(&event_algebra::residuate(&seq, by));
                assert_eq!(stepped, oracle, "◇({seq})/{by}");
            }
        }
        // Two steps down the chain: ◇(a·b·c·d)/a/b = ◇(c·d).
        let two = g.assume_occurred(lits[0]).assume_occurred(lits[1]);
        let tail = Expr::seq([Expr::lit(lits[2]), Expr::lit(lits[3])]);
        assert_eq!(two, Guard::eventually_expr(&tail));
    }

    #[test]
    fn eventually_expr_distributes() {
        let (_, e, f) = setup();
        // ◇(e + f) = ◇e + ◇f.
        let g = Guard::eventually_expr(&Expr::or([Expr::lit(e), Expr::lit(f)]));
        assert_eq!(g, Guard::eventually(e).or(&Guard::eventually(f)));
        // ◇(e | f) = ◇e | ◇f.
        let g2 = Guard::eventually_expr(&Expr::and([Expr::lit(e), Expr::lit(f)]));
        assert_eq!(g2, Guard::eventually(e).and(&Guard::eventually(f)));
        // ◇⊤ = ⊤, ◇0 = 0.
        assert!(Guard::eventually_expr(&Expr::Top).is_top());
        assert!(Guard::eventually_expr(&Expr::Zero).is_bottom());
        // ◇(f̄ + f) = ⊤ (used in Example 9.6).
        let g3 = Guard::eventually_expr(&Expr::or([Expr::lit(f), Expr::lit(f.complement())]));
        assert!(g3.is_top());
    }

    #[test]
    fn weaken_sequences_is_the_small_insight() {
        let (_, e, f) = setup();
        let g = Guard::eventually_expr(&Expr::seq([Expr::lit(e), Expr::lit(f)]));
        let w = g.weaken_sequences();
        assert!(!w.has_seq_atoms());
        assert_eq!(w, Guard::eventually(e).and(&Guard::eventually(f)));
    }

    #[test]
    fn eval_matches_mask_semantics() {
        let (_, e, f) = setup();
        let u = Trace::new([e, f]).unwrap();
        // ¬f holds at indices 0 and 1, not at 2.
        let g = Guard::not_yet(f);
        assert!(g.eval(&u, 0));
        assert!(g.eval(&u, 1));
        assert!(!g.eval(&u, 2));
        // ◇ē + □e: at 0 — e will occur but hasn't; ◇ē false, □e false → false.
        let g2 = Guard::eventually(e.complement()).or(&Guard::occurred(e));
        assert!(!g2.eval(&u, 0));
        assert!(g2.eval(&u, 1));
    }

    #[test]
    fn eval_seq_atom_is_whole_trace() {
        let (_, e, f) = setup();
        let g = Guard::eventually_expr(&Expr::seq([Expr::lit(e), Expr::lit(f)]));
        let u = Trace::new([e, f]).unwrap();
        let v = Trace::new([f, e]).unwrap();
        for i in 0..=2 {
            assert!(g.eval(&u, i));
            assert!(!g.eval(&v, i));
        }
    }

    #[test]
    fn symbols_cover_masks_and_seqs() {
        let (_, e, f) = setup();
        let g = Guard::not_yet(e)
            .and(&Guard::eventually_expr(&Expr::seq([Expr::lit(e), Expr::lit(f)])));
        let syms = g.symbols();
        assert!(syms.contains(&e.symbol()));
        assert!(syms.contains(&f.symbol()));
    }

    #[test]
    fn canonical_merges_adjacent_masks() {
        let (_, e, f) = setup();
        // (◇e|¬e) + □e = ◇e  ({C} ∪ {A} = {A,C}).
        let g = Guard::eventually(e).and(&Guard::not_yet(e)).or(&Guard::occurred(e));
        assert_eq!(g, Guard::eventually(e));
        let _ = f;
    }

    #[test]
    fn to_texpr_roundtrip_samples() {
        let (_, e, f) = setup();
        let samples = [
            Guard::top(),
            Guard::bottom(),
            Guard::not_yet(f),
            Guard::eventually(e.complement()).or(&Guard::occurred(e)),
            Guard::occurred(e).and(&Guard::eventually(f)),
        ];
        for g in &samples {
            let te = g.to_texpr();
            // Spot-check agreement on all maximal traces over {e,f}.
            let syms = [e.symbol(), f.symbol()];
            for u in event_algebra::enumerate_maximal(&syms) {
                for i in 0..=u.len() {
                    assert_eq!(
                        g.eval(&u, i),
                        crate::semantics::sat_at(&u, i, &te),
                        "guard {g:?} texpr {te} at {u},{i}"
                    );
                }
            }
        }
    }
}
