//! A text syntax for `T` expressions — primarily for tests, tools and
//! documentation, mirroring the display format:
//!
//! ```text
//! texpr  := tand ('+' tand)*
//! tand   := tseq ('|' tseq)*
//! tseq   := tatom ('.' tatom)*
//! tatom  := '[]' tatom | '<>' tatom | '!' tatom
//!         | '0' | 'T' | ident | '~' ident | '(' texpr ')'
//! ```
//!
//! A bare identifier is the coerced `E`-atom ("has occurred by now");
//! `[]x` is accepted as its synonym (stability: `□x = x`), while `[]` /
//! `<>` / `!` over compounds keep their general readings.

use crate::texpr::TExpr;
use event_algebra::SymbolTable;
use std::fmt;

/// A `T` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TParseError {
    /// Byte offset.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for TParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TParseError {}

/// Parse a `T` expression, interning identifiers into `table`.
pub fn parse_texpr(input: &str, table: &mut SymbolTable) -> Result<TExpr, TParseError> {
    let mut p = P { input: input.as_bytes(), pos: 0, table };
    let e = p.texpr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct P<'a> {
    input: &'a [u8],
    pos: usize,
    table: &'a mut SymbolTable,
}

impl P<'_> {
    fn err(&self, m: &str) -> TParseError {
        TParseError { offset: self.pos, message: m.to_owned() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn peek2(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos + 1).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn texpr(&mut self) -> Result<TExpr, TParseError> {
        let mut parts = vec![self.tand()?];
        while self.eat(b'+') {
            parts.push(self.tand()?);
        }
        Ok(TExpr::or(parts))
    }

    fn tand(&mut self) -> Result<TExpr, TParseError> {
        let mut parts = vec![self.tseq()?];
        while self.eat(b'|') {
            parts.push(self.tseq()?);
        }
        Ok(TExpr::and(parts))
    }

    fn tseq(&mut self) -> Result<TExpr, TParseError> {
        let mut parts = vec![self.tatom()?];
        while self.eat(b'.') {
            parts.push(self.tatom()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { TExpr::Seq(parts) })
    }

    fn tatom(&mut self) -> Result<TExpr, TParseError> {
        match (self.peek(), self.peek2()) {
            (Some(b'['), Some(b']')) => {
                self.pos += 2;
                let inner = self.tatom()?;
                // Stability: □(Occ e) = Occ e.
                Ok(match inner {
                    TExpr::Occ(l) => TExpr::Occ(l),
                    other => TExpr::Always(Box::new(other)),
                })
            }
            (Some(b'<'), Some(b'>')) => {
                self.pos += 2;
                let inner = self.tatom()?;
                Ok(TExpr::Eventually(Box::new(inner)))
            }
            (Some(b'!'), _) => {
                self.pos += 1;
                let inner = self.tatom()?;
                Ok(TExpr::Not(Box::new(inner)))
            }
            (Some(b'('), _) => {
                self.pos += 1;
                let e = self.texpr()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            (Some(b'~'), _) => {
                self.pos += 1;
                let name = self.ident()?;
                Ok(TExpr::Occ(self.table.complement_of(&name)))
            }
            (Some(b'0'), _) => {
                self.pos += 1;
                Ok(TExpr::Zero)
            }
            (Some(c), _) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                if name == "T" {
                    Ok(TExpr::Top)
                } else {
                    Ok(TExpr::Occ(self.table.event(&name)))
                }
            }
            _ => Err(self.err("expected a T atom")),
        }
    }

    fn ident(&mut self) -> Result<String, TParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut name = String::new();
        loop {
            match self.input.get(self.pos) {
                Some(&c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    name.push(c as char);
                    self.pos += 1;
                }
                Some(b':') if self.input.get(self.pos + 1) == Some(&b':') => {
                    self.pos += 2;
                    name.push('.');
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texprs_equivalent_auto;

    fn p(s: &str) -> (TExpr, SymbolTable) {
        let mut t = SymbolTable::new();
        let e = parse_texpr(s, &mut t).unwrap_or_else(|e| panic!("{s}: {e}"));
        (e, t)
    }

    #[test]
    fn parses_paper_guards() {
        let (g, mut t) = p("<>~e + []e");
        let e = t.event("e");
        let expected = TExpr::or([TExpr::eventually(e.complement()), TExpr::occurred(e)]);
        assert_eq!(g, expected);
        let (g2, _) = p("!f");
        assert!(matches!(g2, TExpr::Not(_)));
    }

    #[test]
    fn box_over_atom_collapses_by_stability() {
        let (g, mut t) = p("[]e");
        assert_eq!(g, TExpr::Occ(t.event("e")));
        // □¬e stays a genuine Always.
        let (g2, _) = p("[]!e");
        assert!(matches!(g2, TExpr::Always(_)));
    }

    #[test]
    fn roundtrips_through_display() {
        for s in ["<>~e + []e", "!f", "!e | <>f + []g", "<>([]a.[]b)", "[]!e"] {
            let mut t = SymbolTable::new();
            let e1 = parse_texpr(s, &mut t).unwrap();
            let printed = e1.display(&t).to_string();
            let e2 = parse_texpr(&printed, &mut t)
                .unwrap_or_else(|err| panic!("reparse {printed}: {err}"));
            assert!(texprs_equivalent_auto(&e1, &e2), "{s} -> {printed}: meaning changed");
        }
    }

    #[test]
    fn example9_guards_parse_and_match_synthesis_output() {
        // The guard strings printed by the harness parse back to the
        // canonical guards.
        let (g, _) = p("!buy::commit | <>cancel::start");
        assert!(matches!(g, TExpr::And(_)));
    }

    #[test]
    fn errors() {
        let mut t = SymbolTable::new();
        assert!(parse_texpr("", &mut t).is_err());
        assert!(parse_texpr("<>", &mut t).is_err());
        assert!(parse_texpr("(e", &mut t).is_err());
        assert!(parse_texpr("e !", &mut t).is_err());
    }
}
