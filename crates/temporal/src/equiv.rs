//! Semantic equivalence of temporal expressions and guards by exhaustive
//! enumeration of maximal traces — the oracle behind the theorem tests.

use crate::guard_repr::Guard;
use crate::semantics::sat_at;
use crate::texpr::TExpr;
use event_algebra::{enumerate_maximal, SymbolId};
use std::collections::BTreeSet;

/// Collect the symbols a temporal expression mentions.
pub fn texpr_symbols(e: &TExpr) -> BTreeSet<SymbolId> {
    let mut acc = BTreeSet::new();
    fn go(e: &TExpr, acc: &mut BTreeSet<SymbolId>) {
        match e {
            TExpr::Zero | TExpr::Top => {}
            TExpr::Occ(l) => {
                acc.insert(l.symbol());
            }
            TExpr::Not(x) | TExpr::Always(x) | TExpr::Eventually(x) => go(x, acc),
            TExpr::Seq(v) | TExpr::Or(v) | TExpr::And(v) => {
                for p in v {
                    go(p, acc);
                }
            }
        }
    }
    go(e, &mut acc);
    acc
}

/// `a ≡ b` over every (maximal trace, index) pair on `syms`.
pub fn texprs_equivalent(a: &TExpr, b: &TExpr, syms: &[SymbolId]) -> bool {
    enumerate_maximal(syms)
        .iter()
        .all(|u| (0..=u.len()).all(|i| sat_at(u, i, a) == sat_at(u, i, b)))
}

/// `a ≡ b` over the union of their own symbol sets.
pub fn texprs_equivalent_auto(a: &TExpr, b: &TExpr) -> bool {
    let syms: Vec<SymbolId> = texpr_symbols(a).union(&texpr_symbols(b)).copied().collect();
    texprs_equivalent(a, b, &syms)
}

/// Guard equivalence by trace enumeration — exact even in the presence of
/// `◇(sequence)` atoms, unlike [`Guard::equiv_masks`].
pub fn guards_equivalent(a: &Guard, b: &Guard, syms: &[SymbolId]) -> bool {
    enumerate_maximal(syms).iter().all(|u| (0..=u.len()).all(|i| a.eval(u, i) == b.eval(u, i)))
}

/// Guard equivalence over the union of the guards' own symbols.
pub fn guards_equivalent_auto(a: &Guard, b: &Guard) -> bool {
    let syms: Vec<SymbolId> = a.symbols().union(&b.symbols()).copied().collect();
    guards_equivalent(a, b, &syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Expr, Literal, SymbolTable};

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    #[test]
    fn guard_and_its_texpr_rendering_agree() {
        let (_, e, f) = setup();
        let guards = [
            Guard::not_yet(f),
            Guard::eventually(e.complement()).or(&Guard::occurred(e)),
            Guard::eventually_expr(&Expr::seq([Expr::lit(e), Expr::lit(f)])),
            Guard::occurred(e).and(&Guard::not_yet(f)),
        ];
        for g in &guards {
            let te = g.to_texpr();
            let syms: Vec<SymbolId> = g.symbols().into_iter().collect();
            assert!(
                enumerate_maximal(&syms)
                    .iter()
                    .all(|u| (0..=u.len()).all(|i| g.eval(u, i) == sat_at(u, i, &te))),
                "{te}"
            );
        }
    }

    #[test]
    fn mask_equivalence_matches_trace_equivalence() {
        let (_, e, f) = setup();
        let pairs = [
            (Guard::not_yet(e).or(&Guard::occurred(e.complement())), Guard::not_yet(e), true),
            (Guard::eventually(e), Guard::occurred(e), false),
            (Guard::eventually(e).or(&Guard::eventually(e.complement())), Guard::top(), true),
            (Guard::not_yet(f), Guard::not_yet(e), false),
        ];
        for (a, b, expected) in pairs {
            assert_eq!(a.equiv_masks(&b), expected, "{a:?} vs {b:?}");
            assert_eq!(guards_equivalent_auto(&a, &b), expected, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn seq_guard_differs_from_weakened_guard_semantically() {
        // ◇(e·f) vs ◇e|◇f differ exactly on traces where f precedes e.
        let (_, e, f) = setup();
        let strict = Guard::eventually_expr(&Expr::seq([Expr::lit(e), Expr::lit(f)]));
        let weak = strict.weaken_sequences();
        assert!(!guards_equivalent_auto(&strict, &weak));
        let u = event_algebra::Trace::new([f, e]).unwrap();
        assert!(!strict.eval(&u, 2));
        assert!(weak.eval(&u, 2));
    }

    #[test]
    fn texpr_equivalence_examples() {
        let (_, e, _) = setup();
        // Stability: □(Occ e) ≡ Occ e.
        assert!(texprs_equivalent_auto(&TExpr::Always(Box::new(TExpr::Occ(e))), &TExpr::Occ(e)));
        // □¬e ≢ ¬e.
        assert!(!texprs_equivalent_auto(
            &TExpr::Always(Box::new(TExpr::not_yet(e))),
            &TExpr::not_yet(e)
        ));
        // ◇e + ◇ē ≡ ⊤.
        assert!(texprs_equivalent_auto(
            &TExpr::or([TExpr::eventually(e), TExpr::eventually(e.complement())]),
            &TExpr::Top
        ));
    }

    #[test]
    fn texpr_symbols_collects_everything() {
        let (_, e, f) = setup();
        let t = TExpr::or([
            TExpr::not_yet(e),
            TExpr::Eventually(Box::new(TExpr::Seq(vec![TExpr::Occ(f), TExpr::Occ(e)]))),
        ]);
        assert_eq!(texpr_symbols(&t).len(), 2);
    }
}
