//! The temporal guard language `T` of Singh (ICDE 1996), Section 4.
//!
//! Guards are the localized conditions under which events may occur.
//! This crate provides:
//!
//! - [`TExpr`] — the syntax of `T` (`□`, `◇`, `¬` over event atoms and the
//!   algebra operators, Syntax 5–6);
//! - [`sat_at`] — the indexed semantics over maximal traces
//!   (Semantics 7–14), which regenerates the truth table of Figure 3;
//! - [`Guard`] — a canonical DNF representation over per-symbol knowledge
//!   states, on which the identities of Example 8 are decided exactly,
//!   with symbolic `◇(sequence)` atoms reduced by residuation;
//! - [`Fact`], [`Knowledge`], [`status`], [`needs`] — the announcement
//!   machinery of Section 4.3 (`□e` occurrence messages, `◇e` promises,
//!   and the reduction proof rules);
//! - equivalence oracles by exhaustive trace enumeration for the theorem
//!   tests.

#![warn(missing_docs)]

mod equiv;
mod guard_repr;
mod message;
mod parse;
mod semantics;
mod texpr;

pub use equiv::{
    guards_equivalent, guards_equivalent_auto, texpr_symbols, texprs_equivalent,
    texprs_equivalent_auto,
};
pub use guard_repr::{
    eventually_mask, not_yet_mask, occurred_mask, state_on, Conjunct, Guard, ST_A, ST_B, ST_C,
    ST_D, ST_FULL,
};
pub use message::{need_edges, needs, status, Fact, GuardStatus, Know, Knowledge, Need};
pub use parse::{parse_texpr, TParseError};
pub use semantics::{sat_at, sat_profile};
pub use texpr::{TExpr, TExprDisplay};
