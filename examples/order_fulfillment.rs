//! A realistic e-commerce order-fulfillment workflow, specified in the
//! declarative language with the extended-transaction macros (capturing
//! ACTA [3] / Günthör [8]-style primitives) and run on both the
//! distributed event-centric scheduler and the centralized baseline for
//! comparison.
//!
//! Tasks: `payment` (RDA transaction), `inventory` (reserve stock,
//! compensatable), `shipping` (starts only after payment commits), and
//! `refund` (compensation if shipping fails after inventory committed).

use constrained_events::agents::library::{compensatable_task, rda_transaction};
use constrained_events::{Engine, Script, WorkflowBuilder};

fn build(shipping_script: &[&str]) -> constrained_events::Workflow {
    let mut b = WorkflowBuilder::new("order_fulfillment");
    let payment = rda_transaction("payment", b.table());
    let inventory = compensatable_task("inventory", b.table());
    let shipping = rda_transaction("shipping", b.table());
    let refund = rda_transaction("refund", b.table());
    b.add_agent(0, payment, Script::of(&["start", "commit"]));
    b.add_agent(1, inventory, Script::of(&["start", "commit"]));
    b.add_agent(2, shipping, Script::of(shipping_script));
    b.add_agent(3, refund, Script::of(&[]));

    // Klein / ACTA-style dependencies, in the spec syntax:
    // inventory reserves before payment commits (commit_dep = Klein <).
    b.dependency_spec("commit_dep(inventory, payment)").unwrap();
    // shipping starts only after payment commits.
    b.dependency_spec("begin_on_commit(payment, shipping)").unwrap();
    // if payment aborts, inventory aborts too (abort dependency).
    b.dependency_spec("abort_dep(payment, inventory)").unwrap();
    // if payment committed but shipping never commits, refund starts
    // (compensation, Example 4's pattern).
    b.dependency_spec("compensate(payment, shipping, refund)").unwrap();
    b.build()
}

fn main() {
    println!(
        "== Order fulfillment (macros: commit_dep, begin_on_commit, abort_dep, compensate) ==\n"
    );

    // ---- happy path: everything commits, no refund ----
    let wf = build(&["commit"]); // shipping.start is triggered by begin_on_commit
    let report = wf.run(7);
    println!("happy path trace: {}", report.trace);
    assert!(report.all_satisfied(), "{report:?}");
    let names: Vec<&str> = report
        .trace
        .events()
        .iter()
        .filter(|l| l.is_pos())
        .filter_map(|l| wf.spec.table.name(l.symbol()))
        .collect();
    assert!(names.contains(&"shipping.commit"), "{names:?}");
    assert!(!names.contains(&"refund.start"), "no refund on success: {names:?}");
    println!("  shipping committed, no refund: ok");

    // ---- shipping fails: refund is triggered ----
    let wf = build(&["abort"]); // shipping starts (triggered) then aborts
    let report = wf.run(7);
    println!("\nshipping-failure trace: {}", report.trace);
    assert!(report.all_satisfied(), "{report:?}");
    let names: Vec<&str> = report
        .trace
        .events()
        .iter()
        .filter(|l| l.is_pos())
        .filter_map(|l| wf.spec.table.name(l.symbol()))
        .collect();
    assert!(names.contains(&"refund.start"), "refund triggered: {names:?}");
    println!("  refund.start was proactively triggered after shipping aborted: ok");

    // ---- the same workflow under the centralized baseline ----
    let wf = build(&["commit"]);
    let central = wf.run_centralized(7, Engine::Symbolic);
    println!("\ncentralized baseline (symbolic engine):");
    println!("  trace: {}", central.trace);
    println!("  satisfied: {}", central.all_satisfied());
    assert!(central.all_satisfied());

    // Compare architecture: messages that crossed sites.
    let dist_report = wf.run(7);
    println!("\narchitecture comparison (same workflow, same seed):");
    println!(
        "  distributed: {} messages total, {:.0}% remote",
        dist_report.net.sent_total,
        100.0 * dist_report.net.remote_fraction()
    );
    println!(
        "  centralized: {} messages total, {:.0}% remote",
        central.net.sent_total,
        100.0 * central.net.remote_fraction()
    );
}
