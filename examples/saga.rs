//! Extended-transaction models as pure dependency sets: a saga with
//! compensation, a contingency pair, and a fork/join diamond — all
//! scheduled by the same distributed guard machinery, no bespoke
//! scheduler logic per model (the paper's Section 1 claim).

use constrained_events::models::{contingency, diamond, saga};

fn show(label: &str, report: &constrained_events::RunReport, wf: &constrained_events::Workflow) {
    let names: Vec<&str> = report
        .trace
        .events()
        .iter()
        .filter(|l| l.is_pos())
        .filter_map(|l| wf.spec.table.name(l.symbol()))
        .collect();
    println!("{label}");
    println!("  events: {names:?}");
    println!("  all dependencies satisfied: {}\n", report.all_satisfied());
    assert!(report.all_satisfied());
}

fn main() {
    println!("== Extended transaction models on distributed guards ==\n");

    let wf = saga(4, 3, None);
    show("saga (4 steps, success):", &wf.run(11), &wf);

    let wf = saga(4, 3, Some(2));
    let r = wf.run(11);
    show("saga (step 2 aborts -> steps 0 and 1 compensated):", &r, &wf);

    let wf = contingency(3, false);
    show("contingency (primary succeeds):", &wf.run(7), &wf);

    let wf = contingency(3, true);
    show("contingency (primary aborts -> alternate commits):", &wf.run(7), &wf);

    let wf = diamond(3);
    let r = wf.run(5);
    show("diamond fork/join (sink starts after both branches):", &r, &wf);
    println!(
        "the join was coordinated by an n-party conditional promise: both branch\n\
         commits assumed each other through the sink's ◇-promise (Example 11,\n\
         generalized), then discharged it by occurring."
    );
}
