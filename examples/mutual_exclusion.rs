//! Example 13 from the paper: mutual exclusion between two looping tasks
//! expressed as a *parametrized* dependency —
//!
//! ```text
//! b2[y]·b1[x] + ē1[x] + b̄2[y] + e1[x]·b2[y]
//! ```
//!
//! "if T1 enters its critical section before T2, then T1 exits its
//! critical section before T2 enters". The tasks have arbitrary loops:
//! event *types* recur while event *instances* are minted fresh by
//! per-agent counters (Section 5.2). The dynamic scheduler instantiates
//! a ground dependency for every pair of iterations on demand.

use constrained_events::distributed::param::{mutex_pair, DynamicScheduler, Outcome, TokenCounter};

fn main() {
    println!("== Mutual exclusion over looping tasks (Example 13) ==\n");

    // Both directions of the critical-section dependency, with x indexing
    // T1's iterations and y T2's in both templates.
    let (d12, d21) = mutex_pair("b1", "e1", "b2", "e2");
    let mut sched = DynamicScheduler::new(vec![d12, d21]);
    let mut t1 = TokenCounter::new();
    let mut t2 = TokenCounter::new();

    // An adversarial interleaving: T2 tries to enter while T1 is inside.
    let k = t1.mint("iter");
    sched.bind("x", k);
    let j = t2.mint("iter");
    sched.bind("y", j);

    assert_eq!(sched.attempt(&format!("b1[{k}]")), Outcome::Granted);
    println!("T1 enters its critical section (b1[{k}])");
    // Entering obligates the exit — the task structure guarantees it.
    sched.guarantee(&format!("e1[{k}]"));

    let r = sched.attempt(&format!("b2[{j}]"));
    assert_eq!(r, Outcome::Parked);
    println!("T2 attempts to enter (b2[{j}]): {r:?} — excluded while T1 is inside");

    assert_eq!(sched.attempt(&format!("e1[{k}]")), Outcome::Granted);
    println!("T1 exits (e1[{k}]); the parked enter fires automatically");
    println!("trace so far: {}", sched.trace());

    sched.guarantee(&format!("e2[{j}]"));
    assert_eq!(sched.attempt(&format!("e2[{j}]")), Outcome::Granted);

    // Keep looping: three more iterations each, interleaved.
    for _ in 0..3 {
        let k = t1.mint("iter");
        sched.bind("x", k);
        assert_eq!(sched.attempt(&format!("b1[{k}]")), Outcome::Granted);
        sched.guarantee(&format!("e1[{k}]"));
        assert_eq!(sched.attempt(&format!("e1[{k}]")), Outcome::Granted);

        let j = t2.mint("iter");
        sched.bind("y", j);
        assert_eq!(sched.attempt(&format!("b2[{j}]")), Outcome::Granted);
        sched.guarantee(&format!("e2[{j}]"));
        assert_eq!(sched.attempt(&format!("e2[{j}]")), Outcome::Granted);
    }

    println!("\nafter 4 iterations of each task:");
    println!("  ground dependencies instantiated: {}", sched.ground_deps.len());
    println!("  full trace: {}", sched.trace());
    assert!(sched.all_satisfied());
    println!("  every instantiated dependency satisfied: true");

    // Verify the mutual-exclusion invariant on the realized trace.
    let trace = sched.trace();
    let evs = trace.events();
    let pos_of = |n: &str| {
        sched
            .table
            .lookup(n)
            .and_then(|sym| evs.iter().position(|l| l.symbol() == sym && l.is_pos()))
    };
    for k in 1..=4u64 {
        for j in 1..=4u64 {
            if let (Some(b1), Some(e1), Some(b2)) = (
                pos_of(&format!("b1[{k}]")),
                pos_of(&format!("e1[{k}]")),
                pos_of(&format!("b2[{j}]")),
            ) {
                assert!(!(b1 < b2 && b2 < e1), "b2[{j}] occurred inside T1's critical section {k}");
            }
        }
    }
    println!("  no enter of one task falls inside the other's critical section: ok");
}
