//! Quickstart: specify a two-task workflow declaratively, inspect the
//! synthesized guards, run it distributed, and check the realized trace.

use constrained_events::agents::library::rda_transaction;
use constrained_events::{Engine, Script, WorkflowBuilder};

fn main() {
    // Two transactions at different sites; book must commit before buy
    // (buy is non-refundable — Example 4's core constraint).
    let mut b = WorkflowBuilder::new("quickstart");
    let buy = rda_transaction("buy", b.table());
    let book = rda_transaction("book", b.table());
    b.add_agent(0, buy, Script::of(&["start", "commit"]));
    b.add_agent(1, book, Script::of(&["start", "commit"]));
    b.dependency_str("~buy::start + book::start").unwrap();
    b.dependency_str("~buy::commit + book::commit . buy::commit").unwrap();
    let workflow = b.build();

    println!("== guards synthesized from the dependencies (Definition 2) ==");
    for ev in ["buy.start", "book.start", "buy.commit", "book.commit"] {
        println!("  G({ev}) = {}", workflow.guard_text(ev).unwrap());
    }

    // Static analysis (the paper's compilation phase, Section 6).
    let analysis = constrained_events::guards::analyze(&workflow.spec.dependencies);
    println!("\n== compile-time analysis ==");
    println!("  jointly contradictory: {}", analysis.jointly_contradictory);
    println!("  consensus pairs (Example 11 promises): {}", analysis.consensus_pairs.len());

    // Distributed execution on the simulated network.
    let report = workflow.run(42);
    println!("\n== distributed run ==");
    println!("  trace: {}", report.trace);
    println!("  all dependencies satisfied: {}", report.all_satisfied());
    println!(
        "  {} messages, {:.0}% crossed sites, busiest site handled {}",
        report.net.sent_total,
        100.0 * report.net.remote_fraction(),
        report.net.max_site_load()
    );
    assert!(report.all_satisfied());

    // The same workflow under the centralized baseline for comparison.
    let central = workflow.run_centralized(42, Engine::Symbolic);
    println!("\n== centralized baseline ==");
    println!("  trace: {}", central.trace);
    println!(
        "  {} messages, busiest site handled {}",
        central.net.sent_total,
        central.net.max_site_load()
    );
    assert!(central.all_satisfied());
}
