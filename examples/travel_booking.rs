//! Example 4 (and its parametrized form, Example 12) from the paper: a
//! travel workflow that buys a non-refundable airline ticket and books a
//! refundable rental car at *different enterprises* — no two-phase commit
//! is possible, so the coordination is expressed as three declarative
//! dependencies:
//!
//! 1. `~buy.start + book.start`          — initiate book if buy starts;
//! 2. `~buy.commit + book.commit . buy.commit` — buy (non-compensatable)
//!    commits only after book, so committing buy commits the workflow;
//! 3. `~book.commit + buy.commit + cancel.start` — compensate book by
//!    cancel if buy fails to commit.
//!
//! Two runs: the success path (both commit, no compensation) and the
//! failure path (buy aborts; the scheduler *triggers* the compensating
//! cancel task on its own accord — Section 3.3(b)).

use analyze::{analyze_dependencies, AnalyzeOptions};
use constrained_events::agents::library::{rda_transaction, typical_application};
use constrained_events::{Script, WorkflowBuilder};

fn build(buy_script: &[&str]) -> constrained_events::Workflow {
    let mut b = WorkflowBuilder::new("travel");
    let buy = rda_transaction("buy", b.table());
    let book = rda_transaction("book", b.table());
    let cancel = typical_application("cancel", b.table());
    b.add_agent(0, buy, Script::of(buy_script));
    // book's start is triggerable: dependency 1 will cause it. The agent
    // itself only plans to commit once started.
    b.add_agent(1, book, Script::of(&["commit"]));
    // cancel runs only when triggered (no script of its own).
    b.add_agent(2, cancel, Script::of(&[]));
    b.dependency_str("~buy::start + book::start").unwrap();
    b.dependency_str("~buy::commit + book::commit . buy::commit").unwrap();
    b.dependency_str("~book::commit + buy::commit + cancel::start").unwrap();
    b.build()
}

fn main() {
    println!("== Travel workflow (Example 4) ==\n");

    // ---- static verification before any execution (Section 6) ----
    let wf = build(&["start", "commit"]);
    let verdict =
        analyze_dependencies(&wf.spec.dependencies, &wf.spec.table, &AnalyzeOptions::default());
    println!("wfcheck verdict before deployment:");
    print!("{}", verdict.render_text(None));
    // The compensation dependency couples a promise with a not-yet hold
    // (advisory WF022), but nothing is contradictory or dead: no errors.
    assert_eq!(verdict.exit_code(false), 0, "travel workflow must carry no errors");
    assert!(!verdict.jointly_contradictory);
    assert!(verdict.dead.is_empty(), "every travel event is reachable");

    // ---- success path ----
    println!("\nguards synthesized from the three dependencies:");
    for ev in ["buy.start", "book.start", "buy.commit", "book.commit", "cancel.start"] {
        println!("  G({ev}) = {}", wf.guard_text(ev).unwrap());
    }
    let report = wf.run(2026);
    println!("\nsuccess path:");
    println!("  trace: {}", report.trace);
    println!("  all dependencies satisfied: {}", report.all_satisfied());
    assert!(report.all_satisfied());
    let table = &wf.spec.table;
    let commit = table.lookup("buy.commit").unwrap();
    assert!(report.trace.contains(constrained_events::Literal::pos(commit)));
    // book.commit precedes buy.commit (dependency 2).
    let evs = report.trace.events();
    let b = evs
        .iter()
        .position(|l| table.name(l.symbol()) == Some("book.commit") && l.is_pos())
        .expect("book committed");
    let a = evs
        .iter()
        .position(|l| table.name(l.symbol()) == Some("buy.commit") && l.is_pos())
        .expect("buy committed");
    assert!(b < a, "book commits before buy");
    println!("  book.commit precedes buy.commit: ok");

    // ---- failure path: buy aborts, cancel is triggered ----
    let wf = build(&["start", "abort"]);
    let report = wf.run(2026);
    println!("\nfailure path (buy aborts):");
    println!("  trace: {}", report.trace);
    println!("  all dependencies satisfied: {}", report.all_satisfied());
    assert!(report.all_satisfied());
    let table = &wf.spec.table;
    let cancel_started = report
        .trace
        .events()
        .iter()
        .any(|l| table.name(l.symbol()) == Some("cancel.start") && l.is_pos());
    assert!(cancel_started, "the scheduler triggered the compensation");
    println!("  compensation (cancel.start) was proactively triggered: ok");
}
